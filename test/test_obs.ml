(* Tests for the serving-observability layer: Histogram (QCheck algebraic
   properties plus a cross-check against the exact Stats percentiles),
   the structured event log (codec round-trip, rotation, degradation) and
   the Prometheus text exposition renderer. *)

open Asc_util
module H = Histogram
module Protocol = Asc_core.Protocol

let qtest = QCheck_alcotest.to_alcotest

(* --- Generators --------------------------------------------------------- *)

(* Latency-like samples spanning the default bucket range (0.1 ms .. 100 s)
   so every property exercises underflow, interior and near-overflow
   buckets. *)
let sample_gen = QCheck.map (fun i -> float_of_int i *. 1e-4) QCheck.(int_range 1 1_000_000)

let samples_gen = QCheck.(list_of_size (Gen.int_range 1 200) sample_gen)

let hist_of samples =
  let h = H.create () in
  List.iter (H.record h) samples;
  h

let json_str j = Json.to_string ~compact:true j

(* --- Histogram properties ----------------------------------------------- *)

let prop_record_lossless =
  QCheck.Test.make ~name:"histogram: record never loses a sample" ~count:200
    samples_gen (fun samples ->
      let h = hist_of samples in
      let n = List.length samples in
      H.count h = n
      && Array.fold_left ( + ) 0 (H.bucket_counts h) = n
      (* records accumulate left-to-right, exactly like fold_left *)
      && H.sum h = List.fold_left ( +. ) 0.0 samples)

let prop_cumulative_monotone =
  QCheck.Test.make ~name:"histogram: cumulative buckets are monotone"
    ~count:200 samples_gen (fun samples ->
      let h = hist_of samples in
      let cum = H.cumulative h in
      let ok = ref true in
      Array.iteri
        (fun i (_, c) -> if i > 0 && c < snd cum.(i - 1) then ok := false)
        cum;
      !ok
      && snd cum.(Array.length cum - 1) <= H.count h
      && snd cum.(Array.length cum - 1)
         + (H.bucket_counts h).(Array.length cum)
         = H.count h)

let prop_merge_commutative =
  QCheck.Test.make ~name:"histogram: merge is commutative" ~count:200
    QCheck.(pair samples_gen samples_gen) (fun (xs, ys) ->
      let ab = H.merge (hist_of xs) (hist_of ys) in
      let ba = H.merge (hist_of ys) (hist_of xs) in
      json_str (H.to_json ab) = json_str (H.to_json ba)
      && H.min_value ab = H.min_value ba
      && H.max_value ab = H.max_value ba)

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram: merge is associative" ~count:200
    QCheck.(triple samples_gen samples_gen samples_gen) (fun (xs, ys, zs) ->
      let a, b, c = (hist_of xs, hist_of ys, hist_of zs) in
      let l = H.merge (H.merge a b) c in
      let r = H.merge a (H.merge b c) in
      H.bucket_counts l = H.bucket_counts r
      && H.count l = H.count r
      && H.min_value l = H.min_value r
      && H.max_value l = H.max_value r
      (* float addition is commutative but not bit-exactly associative:
         hold the sums to a relative tolerance instead *)
      && Float.abs (H.sum l -. H.sum r) <= 1e-9 *. Float.abs (H.sum l))

(* The estimator's contract versus the exact sample statistics from
   {!Stats}: a histogram quantile always lands in the same bucket as the
   nearest-rank sample it approximates, stays inside the observed
   envelope, and is exact at p = 100 (both definitions give the max). *)
let prop_quantile_vs_stats =
  QCheck.Test.make ~name:"histogram: quantile tracks Stats.percentile_f"
    ~count:200
    QCheck.(pair samples_gen (int_range 0 100))
    (fun (samples, pi) ->
      let p = float_of_int pi in
      let h = hist_of samples in
      let n = List.length samples in
      let q = Option.get (H.quantile h ~p) in
      let sorted = List.sort compare samples in
      let rank =
        Stdlib.max 1
          (Stdlib.min n (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n))))
      in
      let nearest = List.nth sorted (rank - 1) in
      let bounds = H.bounds h in
      let m = Array.length bounds in
      let bucket v =
        let i = ref 0 in
        while !i < m && v > bounds.(!i) do
          incr i
        done;
        !i
      in
      let k = bucket nearest in
      let lo = if k = 0 then 0.0 else bounds.(k - 1) in
      let hi = if k = m then infinity else bounds.(k) in
      q >= lo && q <= hi
      && q >= List.hd sorted
      && q <= List.nth sorted (n - 1)
      && H.quantile h ~p:100.0 = Some (Stats.percentile_f ~p:100.0 samples))

let prop_histogram_roundtrip =
  QCheck.Test.make ~name:"histogram: JSON codec round-trips" ~count:200
    samples_gen (fun samples ->
      let h = hist_of samples in
      match H.of_json (H.to_json h) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok h' ->
          H.bounds h = H.bounds h'
          && H.bucket_counts h = H.bucket_counts h'
          && H.count h = H.count h'
          && H.sum h = H.sum h')

let test_histogram_edges () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check bool) "empty quantile" true (H.quantile h ~p:50.0 = None);
  Alcotest.(check bool) "empty min" true (H.min_value h = None);
  Alcotest.(check (float 0.0)) "empty sum" 0.0 (H.sum h);
  (match H.quantile h ~p:101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p > 100 must raise");
  (match H.create ~bounds:[||] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty bounds must raise");
  (match H.create ~bounds:[| 1.0; 1.0 |] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing bounds must raise");
  let a = H.create ~bounds:[| 1.0 |] () and b = H.create ~bounds:[| 2.0 |] () in
  (match H.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merging different bounds must raise");
  (* Upper-inclusive (Prometheus le) bucketing: a value equal to a bound
     lands in that bound's bucket, just above it in the next. *)
  let h = H.create ~bounds:[| 1.0; 2.0 |] () in
  H.record h 1.0;
  H.record h 1.0000001;
  H.record h 5.0;
  Alcotest.(check (array int)) "le bucketing" [| 1; 1; 1 |] (H.bucket_counts h)

(* --- Event-log codec ----------------------------------------------------- *)

(* Timestamps are whole seconds so the %.12g JSON float format
   round-trips them exactly; keys avoid the reserved ts/level/event/job
   names so the field list survives the reserved-name filter verbatim. *)
let event_gen =
  QCheck.make
    ~print:(fun e -> json_str (Log.event_to_json e))
    QCheck.Gen.(
      let* ts = int_range 0 2_000_000_000 in
      let* level = oneofl [ Log.Debug; Log.Info; Log.Warn; Log.Error ] in
      let* name = oneofl [ "job.completed"; "worker.crash"; "a.b.c"; "x" ] in
      let* job = opt (oneofl [ "604f7aa57166d9f6"; "deadbeef" ]) in
      let* fields =
        list_size (int_range 0 4)
          (pair
             (oneofl [ "k1"; "k2"; "slot"; "reason" ])
             (oneofl [ Json.Int 7; Json.Str "s"; Json.Bool true ]))
      in
      return
        {
          Log.ev_ts = float_of_int ts;
          ev_level = level;
          ev_event = name;
          ev_job = job;
          ev_fields = fields;
        })

let prop_event_roundtrip =
  QCheck.Test.make ~name:"log: event codec round-trips through JSONL"
    ~count:500 event_gen (fun e ->
      let line = json_str (Log.event_to_json e) in
      match Json.parse line with
      | Error err -> QCheck.Test.fail_reportf "unparseable line: %s" err
      | Ok json -> (
          match Log.event_of_json json with
          | Error err -> QCheck.Test.fail_reportf "decode failed: %s" err
          | Ok e' -> e' = e))

(* --- Log handle behaviour ------------------------------------------------ *)

let temp_dir () =
  let path = Filename.temp_file "asc-obs" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_log_writes_jsonl () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "events.jsonl" in
  let log = Some (Log.create path) in
  Log.emit log "server.start" ~fields:[ ("workers", Json.Int 2) ];
  Log.emit log "job.completed" ~job:"abc" ~level:Log.Info;
  Log.emit log "worker.crash" ~level:Log.Warn ~fields:[ ("slot", Json.Int 0) ];
  Log.close log;
  let lines = read_lines path in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  List.iter
    (fun line ->
      match Result.bind (Json.parse line) Log.event_of_json with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad line %S: %s" line e)
    lines;
  (match Result.bind (Json.parse (List.nth lines 1)) Log.event_of_json with
  | Ok e ->
      Alcotest.(check string) "event name" "job.completed" e.Log.ev_event;
      Alcotest.(check (option string)) "job key" (Some "abc") e.Log.ev_job
  | Error e -> Alcotest.failf "decode: %s" e)

let test_log_threshold () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "events.jsonl" in
  let log = Some (Log.create ~level:Log.Warn path) in
  Alcotest.(check bool) "info disabled" false (Log.enabled log Log.Info);
  Alcotest.(check bool) "error enabled" true (Log.enabled log Log.Error);
  Log.emit log "dropped" ~level:Log.Info;
  Log.emit log "dropped" ~level:Log.Debug;
  Log.emit log "kept" ~level:Log.Error;
  Log.close log;
  Alcotest.(check int) "only the error line" 1 (List.length (read_lines path))

let test_log_rotation () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "events.jsonl" in
  (* Each line is ~60 bytes: a 256-byte cap forces several rotations. *)
  let log = Some (Log.create ~max_bytes:256 ~keep:2 path) in
  for i = 1 to 40 do
    Log.emit log "tick" ~fields:[ ("i", Json.Int i) ]
  done;
  Log.close log;
  Alcotest.(check bool) "live file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "rotated copy exists" true (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool) "keep bounds copies" false
    (Sys.file_exists (path ^ ".2"));
  (* Every surviving line — in both generations — is still valid JSONL. *)
  List.iter
    (fun file ->
      List.iter
        (fun line ->
          match Result.bind (Json.parse line) Log.event_of_json with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "bad rotated line %S: %s" line e)
        (read_lines file))
    [ path; path ^ ".1" ]

let test_log_degrades_on_bad_path () =
  let tel = Some (Telemetry.create ()) in
  let log = Some (Log.create ?tel "/nonexistent-asc-dir/events.jsonl") in
  (match log with
  | Some t -> Alcotest.(check int) "open failure counted" 1 (Log.write_failures t)
  | None -> assert false);
  Alcotest.(check bool) "degraded handle is disabled" false
    (Log.enabled log Log.Info);
  (* Emitting into a degraded handle never raises — it drops and counts. *)
  Log.emit log "dropped";
  Log.emit log "dropped";
  (match log with
  | Some t -> Alcotest.(check int) "drops counted" 3 (Log.write_failures t)
  | None -> assert false);
  let snap = Telemetry.drain (Option.get tel) in
  Alcotest.(check int) "telemetry counter" 3
    (Telemetry.counter_value snap "log_write_failures");
  Log.close log

(* --- Metrics JSON determinism and Prometheus rendering ------------------- *)

let test_metrics_sorted_deterministic () =
  let h = H.create () in
  H.record h 0.01;
  let render counters gauges =
    json_str
      (Protocol.metrics_response ~gauges ~histograms:[ ("h", h) ] ~pending:1
         ~counters ())
  in
  let a = render [ ("b", 2); ("a", 1) ] [ ("y", 2.0); ("x", 1.0) ] in
  let b = render [ ("a", 1); ("b", 2) ] [ ("x", 1.0); ("y", 2.0) ] in
  Alcotest.(check string) "insertion order cannot leak" a b;
  let ia = Asc_util.Json.to_string ~compact:true (Json.Obj [ ("a", Json.Int 1) ]) in
  Alcotest.(check bool) "sanity" true (String.length ia > 0)

let test_prometheus_exposition () =
  let h = H.create () in
  List.iter (H.record h) [ 0.00005; 0.0003; 1000.0 ];
  let metrics =
    Protocol.metrics_response
      ~gauges:[ ("queue_depth", 4.0); ("uptime_seconds", 1.25) ]
      ~histograms:[ ("job_e2e_seconds", h) ]
      ~pending:4
      ~counters:[ ("jobs_completed", 7); ("jobs_failed", 0) ]
      ()
  in
  match Protocol.prometheus_of_metrics metrics with
  | Error e -> Alcotest.failf "renderer failed: %s" e
  | Ok text ->
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i =
          i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun line -> Alcotest.(check bool) line true (has line))
        [
          "# TYPE asc_jobs_completed_total counter";
          "asc_jobs_completed_total 7\n";
          "asc_pending 4\n";
          "asc_queue_depth 4\n";
          "asc_uptime_seconds 1.25\n";
          "# TYPE asc_job_e2e_seconds histogram";
          "asc_job_e2e_seconds_bucket{le=\"0.0001\"} 1\n";
          "asc_job_e2e_seconds_bucket{le=\"+Inf\"} 3\n";
          "asc_job_e2e_seconds_count 3\n";
        ];
      (* Bucket series must be cumulative: extract every le value in
         order and check it never decreases. *)
      let values = ref [] in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             match String.index_opt line '}' with
             | Some i
               when String.length line > i + 1
                    && String.sub line 0 4 = "asc_"
                    && String.index_opt line '{' <> None ->
                 let v =
                   String.sub line (i + 2) (String.length line - i - 2)
                 in
                 values := int_of_string v :: !values
             | _ -> ());
      let series = List.rev !values in
      Alcotest.(check int) "all bucket lines" (Array.length (H.bounds h) + 1)
        (List.length series);
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "cumulative non-decreasing" true (monotone series)

let test_prometheus_rejects_non_metrics () =
  match Protocol.prometheus_of_metrics (Json.Obj [ ("ok", Json.Bool true) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-metrics JSON must be rejected"

(* --- Stitched traces ----------------------------------------------------- *)

let test_stitched_trace_shape () =
  let track name ts =
    {
      Telemetry.dom = 0;
      events =
        [
          Telemetry.Begin { name; ts; args = [] };
          Telemetry.End { name; ts = ts +. 0.5 };
        ];
    }
  in
  let doc =
    Telemetry.stitched_trace_json
      [
        (100, "asc supervisor", [ track "serve:job" 1.0 ]);
        (200, "asc worker", [ track "serve:job" 2.0 ]);
        (300, "asc worker", []);
      ]
  in
  let text = Json.to_string doc in
  Alcotest.(check bool) "valid trace JSON" true (Test_telemetry.json_ok text);
  match doc with
  | Json.Obj members -> (
      match List.assoc "traceEvents" members with
      | Json.List events ->
          let pids =
            List.filter_map
              (function
                | Json.Obj m -> Option.bind (List.assoc_opt "pid" m) Json.as_int
                | _ -> None)
              events
            |> List.sort_uniq compare
          in
          Alcotest.(check (list int)) "one process per pid" [ 100; 200; 300 ]
            pids
      | _ -> Alcotest.fail "traceEvents must be a list")
  | _ -> Alcotest.fail "trace must be an object"

let suite =
  [
    ( "obs",
      [
        qtest prop_record_lossless;
        qtest prop_cumulative_monotone;
        qtest prop_merge_commutative;
        qtest prop_merge_associative;
        qtest prop_quantile_vs_stats;
        qtest prop_histogram_roundtrip;
        Alcotest.test_case "histogram edge cases" `Quick test_histogram_edges;
        qtest prop_event_roundtrip;
        Alcotest.test_case "log writes decodable JSONL" `Quick
          test_log_writes_jsonl;
        Alcotest.test_case "log level threshold" `Quick test_log_threshold;
        Alcotest.test_case "log rotation keeps bounded copies" `Quick
          test_log_rotation;
        Alcotest.test_case "log degrades on an unwritable path" `Quick
          test_log_degrades_on_bad_path;
        Alcotest.test_case "metrics JSON is order-independent" `Quick
          test_metrics_sorted_deterministic;
        Alcotest.test_case "prometheus exposition format" `Quick
          test_prometheus_exposition;
        Alcotest.test_case "prometheus rejects non-metrics JSON" `Quick
          test_prometheus_rejects_non_metrics;
        Alcotest.test_case "stitched trace has one track per process" `Quick
          test_stitched_trace_shape;
      ] );
  ]
