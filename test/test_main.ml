(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "asc"
    (List.concat
       [
         Test_util.suite;
         Test_netlist.suite;
         Test_sim.suite;
         Test_circuits.suite;
         Test_fault.suite;
         Test_atpg.suite;
         Test_scan.suite;
         Test_compact.suite;
         Test_core.suite;
         Test_tfault.suite;
         Test_extensions.suite;
         Test_report.suite;
         Test_edge.suite;
         Test_paper_shapes.suite;
         Test_collapse_rules.suite;
         Test_tools.suite;
         Test_diag.suite;
         Test_partial_pipeline.suite;
         Test_truth_tables.suite;
         Test_podem_textbook.suite;
         Test_misc.suite;
         Test_more_edge.suite;
         Test_seq_restore.suite;
         Test_cross.suite;
         Test_metamorphic.suite;
         Test_small_units.suite;
         Test_final.suite;
         Test_parallel.suite;
         Test_telemetry.suite;
         Test_bench_corpus.suite;
         Test_robustness.suite;
         Test_chaos.suite;
         Test_kernel.suite;
         Test_serve.suite;
         Test_route.suite;
         Test_obs.suite;
       ])
