(* Black-box tests for the `asc route` shard router (docs/SERVING.md
   "Fleet: routing, sharding and overload"): served bytes stay identical
   to the one-shot CLI through the router, a SIGKILLed shard fails its
   in-flight jobs over without losing any, a restarted shard is marked
   back up, metrics aggregate across the fleet, and a chaos-failed
   backend write triggers the same failover path.  All tests reuse the
   process harness from {!Test_serve}. *)

open Asc_util
open Test_serve

(* A fleet: [shards] `asc serve` processes plus one `asc route` in front.
   [f] gets the front socket and the shard pid array (so tests can kill
   a specific shard); the router's exit status is returned.  Shards the
   body leaves running are SIGKILLed in the cleanup. *)
let with_fleet ?router_env ?(shards = 2) ?(shard_args = fun _ -> [])
    ?(router_args = []) f =
  let dir = temp_dir "asc-fleet" in
  let shard_sock i = Filename.concat dir (Printf.sprintf "shard%d.sock" i) in
  let front = Filename.concat dir "front.sock" in
  let shard_pids =
    Array.init shards (fun i ->
        spawn_server
          ([ "serve"; "--socket"; shard_sock i; "--domains"; "1" ]
          @ shard_args i)
          (Filename.concat dir (Printf.sprintf "shard%d.log" i)))
  in
  let router_pid = ref None in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        shard_pids;
      (match !router_pid with
      | Some pid -> (
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
          with Unix.Unix_error _ -> ())
      | None -> ());
      rm_rf dir)
    (fun () ->
      Array.iteri (fun i _ -> wait_for_socket (shard_sock i)) shard_pids;
      let pid =
        spawn_server ?env:router_env
          ([ "route"; "--socket"; front ]
          @ List.concat_map
              (fun i -> [ "--backend"; shard_sock i ])
              (List.init shards Fun.id)
          @ router_args)
          (Filename.concat dir "route.log")
      in
      router_pid := Some pid;
      wait_for_socket front;
      (* Give the initial health probes a beat so the first submit finds
         live backends instead of racing the mark-up. *)
      Unix.sleepf 0.3;
      f ~dir ~front ~shard_pids ~shard_sock;
      let _, st = Unix.waitpid [] pid in
      router_pid := None;
      st)

let counter m name =
  match Option.bind (response_member m "counters") (Json.member name) with
  | Some v -> Option.value ~default:(-1) (Json.as_int v)
  | None -> Alcotest.failf "metrics lacks counter %s" name

let gauge m name =
  match
    Option.bind
      (Option.bind (response_member m "gauges") (Json.member name))
      Json.as_float
  with
  | Some v -> v
  | None -> Alcotest.failf "metrics lacks gauge %s" name

(* Poll the router's aggregated metrics until [pred] holds — health
   transitions (probe backoff, mark-up) take a few loop turns. *)
let await_metrics c pred what =
  let rec go n =
    if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      client_request c "{\"op\":\"metrics\"}";
      let m = client_recv c in
      if pred m then m
      else begin
        Unix.sleepf 0.2;
        go (n - 1)
      end
    end
  in
  go 100

let shutdown_router c =
  client_request c "{\"op\":\"shutdown\"}";
  check_bool_member (client_recv c) "ok" true

(* Routing conformance: ping is answered locally with the protocol
   golden; pipelined submits through the router return test sets
   byte-identical to `asc save-tests`; the aggregate metrics see every
   job and both backends. *)
let test_route_basic () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let circuits = [ "s27"; "s298"; "s344"; "s382" ] in
    let refs = Hashtbl.create 4 in
    let dir = temp_dir "asc-route-ref" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    List.iter
      (fun circuit ->
        let path = Filename.concat dir (circuit ^ ".ref") in
        run_cli [ "save-tests"; circuit; path; "--domains"; "1" ];
        Hashtbl.replace refs circuit (read_file path))
      circuits;
    let st =
      with_fleet (fun ~dir:_ ~front ~shard_pids:_ ~shard_sock:_ ->
          let c = client_connect front in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          client_request c "{\"op\":\"ping\"}";
          Alcotest.(check string) "router answers ping locally" ping_golden
            (client_recv c);
          (* Pipeline all four submits in one write, matched by id. *)
          client_send c
            (String.concat "\n"
               (List.mapi
                  (fun i circuit ->
                    Printf.sprintf
                      "{\"op\":\"submit\",\"circuit\":%S,\"seed\":1,\"tset\":true,\"id\":%d}"
                      circuit i)
                  circuits)
            ^ "\n");
          let seen = Hashtbl.create 4 in
          List.iter
            (fun _ ->
              let r = client_recv c in
              check_bool_member r "ok" true;
              let id = int_member r "id" in
              let circuit = List.nth circuits id in
              Alcotest.(check string)
                (Printf.sprintf "routed %s = one-shot" circuit)
                (Hashtbl.find refs circuit) (str_member r "tset");
              Hashtbl.replace seen id ())
            circuits;
          Alcotest.(check int) "all four ids answered" 4 (Hashtbl.length seen);
          let m =
            await_metrics c
              (fun m -> counter m "jobs_completed" = 4)
              "aggregated jobs_completed=4"
          in
          Alcotest.(check (float 1e-9)) "both backends up" 2.0
            (gauge m "backends_up");
          Alcotest.(check (float 1e-9)) "fleet size gauge" 2.0
            (gauge m "backends_total");
          Alcotest.(check int) "no failovers on the happy path" 0
            (counter m "router_failovers");
          shutdown_router c)
    in
    Alcotest.(check bool) "clean router exit" true (st = Unix.WEXITED 0)
  end

(* Failover: SIGKILL one shard with jobs in flight — every job still
   completes (idempotent redispatch), the dead shard is marked down, and
   a replacement process on the same socket is probed back up. *)
let test_route_failover_and_markup () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let circuits = [ "s1423"; "s641"; "s526"; "s820"; "b04"; "b11" ] in
    let st =
      with_fleet (fun ~dir ~front ~shard_pids ~shard_sock ->
          let c = client_connect front in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          client_send c
            (String.concat "\n"
               (List.mapi
                  (fun i circuit ->
                    Printf.sprintf
                      "{\"op\":\"submit\",\"circuit\":%S,\"seed\":1,\"id\":%d}"
                      circuit i)
                  circuits)
            ^ "\n");
          (* Let the router dispatch across both shards, then kill one
             mid-flight. *)
          Unix.sleepf 0.5;
          Unix.kill shard_pids.(0) Sys.sigkill;
          ignore (Unix.waitpid [] shard_pids.(0));
          let seen = Hashtbl.create 8 in
          List.iter
            (fun _ ->
              let r = client_recv c in
              check_bool_member r "ok" true;
              Alcotest.(check string) "failover job completes" "complete"
                (str_member r "status");
              Hashtbl.replace seen (int_member r "id") ())
            circuits;
          Alcotest.(check int) "every job answered exactly once"
            (List.length circuits) (Hashtbl.length seen);
          let m =
            await_metrics c
              (fun m -> gauge m "backends_up" = 1.0)
              "dead shard marked down"
          in
          Alcotest.(check bool) "mark-down counted" true
            (counter m "router_markdowns" >= 1);
          Alcotest.(check bool) "in-flight jobs failed over" true
            (counter m "router_failovers" >= 1);
          Alcotest.(check int) "no job lost" 0 (counter m "jobs_failed");
          (* A replacement shard on the same socket is probed back up. *)
          let pid =
            spawn_server
              [ "serve"; "--socket"; shard_sock 0; "--domains"; "1" ]
              (Filename.concat dir "shard0-reborn.log")
          in
          shard_pids.(0) <- pid;
          let m =
            await_metrics c
              (fun m -> gauge m "backends_up" = 2.0)
              "reborn shard marked up"
          in
          Alcotest.(check bool) "mark-up counted" true
            (counter m "router_markups" >= 1);
          shutdown_router c)
    in
    Alcotest.(check bool) "clean router exit after failover" true
      (st = Unix.WEXITED 0)
  end

(* Chaos: a failed backend write at dispatch time is indistinguishable
   from a dead shard — the router marks it down and redispatches, and the
   client sees a normal completion. *)
let test_route_chaos_backend_write () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let st =
      with_fleet
        ~router_env:[ "ASC_CHAOS=" ^ Chaos.router_backend_write ^ "@1=fail" ]
        (fun ~dir:_ ~front ~shard_pids:_ ~shard_sock:_ ->
          let c = client_connect front in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          client_request c
            "{\"op\":\"submit\",\"circuit\":\"s298\",\"seed\":1,\"id\":7}";
          let r = client_recv c in
          check_bool_member r "ok" true;
          Alcotest.(check string) "redispatched job completes" "complete"
            (str_member r "status");
          Alcotest.(check int) "client id echoed through failover" 7
            (int_member r "id");
          let m =
            await_metrics c
              (fun m -> counter m "router_failovers" >= 1)
              "chaos write counted as failover"
          in
          Alcotest.(check bool) "victim backend marked down" true
            (counter m "router_markdowns" >= 1);
          shutdown_router c)
    in
    Alcotest.(check bool) "clean router exit after chaos write" true
      (st = Unix.WEXITED 0)
  end

(* No live backend: submits are rejected with the typed no_backend
   reason instead of queueing against a dead fleet. *)
let test_route_no_backend () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let st =
      with_fleet ~shards:1 (fun ~dir:_ ~front ~shard_pids ~shard_sock:_ ->
          let c = client_connect front in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          Unix.kill shard_pids.(0) Sys.sigkill;
          ignore (Unix.waitpid [] shard_pids.(0));
          let m =
            await_metrics c
              (fun m -> gauge m "backends_up" = 0.0)
              "lone shard marked down"
          in
          ignore m;
          client_request c
            "{\"op\":\"submit\",\"circuit\":\"s27\",\"seed\":1,\"id\":3}";
          let r = client_recv c in
          check_bool_member r "ok" false;
          Alcotest.(check string) "typed reject" "no_backend"
            (str_member r "reason");
          Alcotest.(check int) "id echoed on the reject" 3 (int_member r "id");
          shutdown_router c)
    in
    Alcotest.(check bool) "clean router exit with a dead fleet" true
      (st = Unix.WEXITED 0)
  end

let suite =
  [
    ( "route",
      [
        Alcotest.test_case "routing conformance and fleet metrics" `Slow
          test_route_basic;
        Alcotest.test_case "SIGKILLed shard fails over; reborn shard marks up"
          `Slow test_route_failover_and_markup;
        Alcotest.test_case "chaos backend write triggers failover" `Slow
          test_route_chaos_backend_write;
        Alcotest.test_case "dead fleet answers typed no_backend rejects" `Slow
          test_route_no_backend;
      ] );
  ]
