(* Tests for the partial-scan pipeline: semantics, invariants, and its
   relationship to the full-scan procedure. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Partial = Asc_scan.Partial
module Pipeline = Asc_core.Pipeline
module Pp = Asc_core.Pipeline_partial

let prepared_s298 =
  lazy
    (let c = Asc_circuits.Registry.get "s298" in
     let config = { Pipeline.default_config with t0_source = Pipeline.Directed 120 } in
     (c, Pipeline.prepare ~config c))

let run_at ratio =
  let c, prepared = Lazy.force prepared_s298 in
  let chain = Partial.by_fanout c ~ratio in
  let config = { Pp.default_config with t0_source = Pipeline.Directed 120 } in
  (c, prepared, chain, Pp.run ~config prepared ~chain)

let test_full_chain_equivalent_semantics () =
  (* With every flip-flop scanned, the partial pipeline's final coverage
     must match an independent full-scan evaluation of its own tests. *)
  let c, prepared, chain, r = run_at 1.0 in
  let full_eval =
    Bitvec.inter
      (Asc_scan.Tset.coverage c r.final_tests ~faults:prepared.faults)
      prepared.targets
  in
  Alcotest.(check bool) "3v coverage = 2v coverage under full chain" true
    (Bitvec.equal r.final_detected full_eval);
  Alcotest.(check int) "cycles match the full model"
    (Asc_scan.Time_model.cycles_of_tests c r.final_tests)
    (Partial.cycles c chain r.final_tests)

let test_partial_runs_and_reports () =
  let c, prepared, chain, r = run_at 0.5 in
  ignore c;
  Alcotest.(check int) "half the flip-flops scanned" 7 (Partial.n_scanned chain);
  Alcotest.(check bool) "some coverage" true (Bitvec.count r.final_detected > 0);
  Alcotest.(check bool) "phase 4 never hurts" true (r.cycles_final <= r.cycles_initial);
  (* The reported coverage is conservative: no more than targets. *)
  Alcotest.(check bool) "within targets" true
    (Bitvec.subset r.final_detected prepared.targets);
  (* tau_seq's coverage is part of the final coverage. *)
  Alcotest.(check bool) "tau_seq contributes" true
    (Bitvec.subset r.f_seq r.final_detected)

let test_partial_cheaper_less_covering () =
  let _, _, _, full = run_at 1.0 in
  let _, _, _, half = run_at 0.5 in
  Alcotest.(check bool) "shorter chain, fewer cycles" true
    (half.cycles_final < full.cycles_final);
  Alcotest.(check bool) "shorter chain, no more coverage" true
    (Bitvec.count half.final_detected <= Bitvec.count full.final_detected)

let test_partial_beats_reused_full_scan_tests () =
  (* The point of adapting the procedure: tests *generated for* the
     partial chain should cover at least as much as the full-scan tests
     re-evaluated under the same chain. *)
  let c, prepared, chain, half = run_at 0.5 in
  let full_config = { Pipeline.default_config with t0_source = Pipeline.Directed 120 } in
  let full = Pipeline.run ~config:full_config prepared in
  let reused =
    Bitvec.inter
      (Partial.coverage c chain full.final_tests ~faults:prepared.faults)
      prepared.targets
  in
  Alcotest.(check bool) "adapted >= reused" true
    (Bitvec.count half.final_detected >= Bitvec.count reused)

let suite =
  [
    ( "partial-pipeline",
      [
        Alcotest.test_case "full chain = full scan" `Quick
          test_full_chain_equivalent_semantics;
        Alcotest.test_case "partial runs and reports" `Quick test_partial_runs_and_reports;
        Alcotest.test_case "cheaper, less covering" `Quick
          test_partial_cheaper_less_covering;
        Alcotest.test_case "adapted beats reused tests" `Quick
          test_partial_beats_reused_full_scan_tests;
      ] );
  ]
