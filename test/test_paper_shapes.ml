(* The paper's qualitative claims, as tests.

   These run the full experiment battery on a few small benchmark
   stand-ins and assert the *shapes* the paper reports — the orderings and
   relationships its conclusions rest on, not the absolute numbers (which
   belong to the authors' netlists and tools; see EXPERIMENTS.md). *)

module Bv = Asc_util.Bitvec
module Scan_test = Asc_scan.Scan_test

let runs =
  lazy
    (List.map
       (fun name -> (name, Asc_core.Experiments.run_circuit ~seed:1 name))
       [ "s298"; "s344"; "b06" ])

let for_all_runs check =
  List.iter (fun (name, r) -> check name (r : Asc_core.Experiments.circuit_run))
    (Lazy.force runs)

(* Section 2: combining tests always lowers the cycle count, so a test set
   already shaped like a combined one starts ahead — the proposed initial
   set should beat [4]'s initial set. *)
let test_proposed_init_beats_4_init () =
  for_all_runs (fun name r ->
      Alcotest.(check bool)
        (name ^ ": proposed init < [4] init")
        true
        (r.directed.cycles_initial < r.static_baseline.cycles_initial))

(* Table 3's bottom line: after both flows run the compaction of [4], the
   proposed sets still need no more cycles. *)
let test_proposed_comp_not_worse () =
  for_all_runs (fun name r ->
      Alcotest.(check bool)
        (name ^ ": proposed comp <= [4] comp")
        true
        (r.directed.cycles_final <= r.static_baseline.cycles_final))

(* Table 4: the proposed procedure yields significantly longer at-speed
   sequences than [4]'s compacted sets. *)
let test_longer_at_speed_sequences () =
  for_all_runs (fun name r ->
      let prop = Asc_scan.Time_model.length_stats r.directed.final_tests in
      let base = Asc_scan.Time_model.length_stats r.static_baseline.final_tests in
      Alcotest.(check bool)
        (name ^ ": longer average sequences")
        true (prop.average > base.average);
      Alcotest.(check bool) (name ^ ": longer max sequence") true (prop.hi > base.hi))

(* Table 1: tau_seq detects a large share of the faults, and the phase-3
   top-up is small relative to |C|. *)
let test_tau_seq_dominates () =
  for_all_runs (fun name r ->
      let targets = Bv.count r.prepared.targets in
      Alcotest.(check bool)
        (name ^ ": tau_seq detects > 80% of targets")
        true
        (5 * Bv.count r.directed.f_seq > 4 * targets);
      Alcotest.(check bool)
        (name ^ ": few added tests")
        true
        (Array.length r.directed.added < Array.length r.prepared.comb_tests))

(* Coverage is never sacrificed: both flows detect the same target faults
   (everything C can detect plus whatever tau_seq adds). *)
let test_no_coverage_regression () =
  for_all_runs (fun name r ->
      let reachable = Bv.inter r.prepared.comb_detected r.prepared.targets in
      Alcotest.(check bool)
        (name ^ ": proposed covers all of C's reach")
        true
        (Bv.subset reachable r.directed.final_detected))

(* Sections 1 and 5 (the at-speed claim): the proposed final set detects
   transition faults that [4]'s initial set (all length-one tests) cannot
   touch at all. *)
let test_at_speed_advantage () =
  for_all_runs (fun name r ->
      let c = r.prepared.circuit in
      let tf = Asc_tfault.Tfault.universe c in
      let cov tests = Bv.count (Asc_tfault.Tfault.coverage c tests ~faults:tf) in
      Alcotest.(check int) (name ^ ": [4] initial TF coverage is zero") 0
        (cov r.static_baseline.initial_tests);
      Alcotest.(check bool)
        (name ^ ": proposed TF coverage > [4] compacted's")
        true
        (cov r.directed.final_tests > cov r.static_baseline.final_tests))

(* Table 5 / Section 4: on a hard-to-initialise circuit the random T0
   detects far fewer faults without scan than the directed one, yet the
   procedure still reaches the same final coverage. *)
let test_random_t0_on_hard_circuit () =
  let r = Asc_core.Experiments.run_circuit ~seed:1 "s382" in
  Alcotest.(check bool) "random F0 << directed F0" true
    (4 * r.random.f0_count < r.directed.f0_count);
  Alcotest.(check int) "same final coverage"
    (Bv.count r.directed.final_detected)
    (Bv.count r.random.final_detected)

let suite =
  [
    ( "paper-shapes",
      [
        Alcotest.test_case "proposed init beats [4] init" `Quick
          test_proposed_init_beats_4_init;
        Alcotest.test_case "proposed comp not worse" `Quick test_proposed_comp_not_worse;
        Alcotest.test_case "longer at-speed sequences" `Quick
          test_longer_at_speed_sequences;
        Alcotest.test_case "tau_seq dominates" `Quick test_tau_seq_dominates;
        Alcotest.test_case "no coverage regression" `Quick test_no_coverage_regression;
        Alcotest.test_case "at-speed advantage" `Quick test_at_speed_advantage;
        Alcotest.test_case "random T0 on a hard circuit" `Quick
          test_random_t0_on_hard_circuit;
      ] );
  ]
