(* Deterministic unit tests for each local equivalence rule of the
   stuck-at collapsing, on hand-built gates, plus the rules that must NOT
   fire (PO-driving stems, multi-fanout stems, DFFs). *)

module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder
module Circuit = Asc_netlist.Circuit
module Fault = Asc_fault.Fault
module Collapse = Asc_fault.Collapse

(* Build: two PIs feeding one gate of [kind], gate drives one PO through a
   buffer (so the gate's output is not itself a PO driver). *)
let one_gate kind =
  let b = Builder.create ("rule_" ^ Gate.to_string kind) in
  let a = Builder.add_input b "a" in
  let c = Builder.add_input b "c" in
  let g = Builder.add_gate b kind "g" [ a; c ] in
  let buf = Builder.add_gate b Gate.Buf "out" [ g ] in
  Builder.add_output b buf;
  (Builder.finalize b, g)

let equivalent col circuit fa fb =
  let index f =
    let u = Collapse.universe col in
    let rec go i = if Fault.equal u.(i) f then i else go (i + 1) in
    go 0
  in
  ignore circuit;
  Collapse.class_of col (index fa) = Collapse.class_of col (index fb)

let check_rule kind ~input_value ~output_value () =
  let c, g = one_gate kind in
  let col = Collapse.run c in
  Alcotest.(check bool)
    (Printf.sprintf "%s: in-sa%d ~ out-sa%d" (Gate.to_string kind)
       (Bool.to_int input_value) (Bool.to_int output_value))
    true
    (equivalent col c (Fault.input g 0 input_value) (Fault.output g output_value));
  (* The opposite polarities must stay distinct classes. *)
  Alcotest.(check bool) "opposite input fault not merged with the gate output" true
    (not
       (equivalent col c
          (Fault.input g 0 (not input_value))
          (Fault.output g output_value)))

let test_xor_no_collapse () =
  let c, g = one_gate Gate.Xor in
  let col = Collapse.run c in
  List.iter
    (fun (iv, ov) ->
      Alcotest.(check bool) "xor inputs never merge with output" true
        (not (equivalent col c (Fault.input g 0 iv) (Fault.output g ov))))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_not_buf_rules () =
  let b = Builder.create "invchain" in
  let a = Builder.add_input b "a" in
  let n = Builder.add_gate b Gate.Not "n" [ a ] in
  let bf = Builder.add_gate b Gate.Buf "b" [ n ] in
  Builder.add_output b bf;
  let c = Builder.finalize b in
  let col = Collapse.run c in
  Alcotest.(check bool) "not: in-sa0 ~ out-sa1" true
    (equivalent col c (Fault.input n 0 false) (Fault.output n true));
  Alcotest.(check bool) "not: in-sa1 ~ out-sa0" true
    (equivalent col c (Fault.input n 0 true) (Fault.output n false));
  Alcotest.(check bool) "buf: in-sa0 ~ out-sa0" true
    (equivalent col c (Fault.input bf 0 false) (Fault.output bf false));
  (* Single-fanout stems chain through: a's output faults merge with the
     inverter's input faults. *)
  Alcotest.(check bool) "stem ~ branch on single fanout" true
    (equivalent col c (Fault.output a false) (Fault.input n 0 false))

let test_multi_fanout_stem_not_merged () =
  let b = Builder.create "fanout2" in
  let a = Builder.add_input b "a" in
  let g1 = Builder.add_gate b Gate.Buf "g1" [ a ] in
  let g2 = Builder.add_gate b Gate.Buf "g2" [ a ] in
  Builder.add_output b g1;
  Builder.add_output b g2;
  let c = Builder.finalize b in
  let col = Collapse.run c in
  Alcotest.(check bool) "branch g1 distinct from stem" true
    (not (equivalent col c (Fault.input g1 0 false) (Fault.output a false)));
  Alcotest.(check bool) "branches distinct from each other" true
    (not (equivalent col c (Fault.input g1 0 false) (Fault.input g2 0 false)))

let test_po_stem_not_merged () =
  (* A stem that drives a PO directly keeps its output faults separate
     from the single branch's. *)
  let b = Builder.create "postem" in
  let a = Builder.add_input b "a" in
  let g = Builder.add_gate b Gate.Buf "g" [ a ] in
  Builder.add_output b a;
  Builder.add_output b g;
  let c = Builder.finalize b in
  let col = Collapse.run c in
  Alcotest.(check bool) "PO stem not merged into branch" true
    (not (equivalent col c (Fault.input g 0 true) (Fault.output a true)))

let test_dff_not_collapsed_through () =
  let b = Builder.create "dffkeep" in
  let a = Builder.add_input b "a" in
  let q = Builder.add_dff b "q" in
  Builder.set_dff_input b q a;
  let g = Builder.add_gate b Gate.Buf "g" [ q ] in
  Builder.add_output b g;
  let c = Builder.finalize b in
  let col = Collapse.run c in
  (* The D-pin fault and the Q output fault are different faults. *)
  Alcotest.(check bool) "D-pin distinct from Q" true
    (not (equivalent col c (Fault.input q 0 false) (Fault.output q false)));
  (* But the D line is the same line as its single-fanout driver. *)
  Alcotest.(check bool) "D-pin ~ driver output" true
    (equivalent col c (Fault.input q 0 false) (Fault.output a false))

let suite =
  [
    ( "collapse-rules",
      [
        Alcotest.test_case "and: in-sa0 ~ out-sa0" `Quick
          (check_rule Gate.And ~input_value:false ~output_value:false);
        Alcotest.test_case "nand: in-sa0 ~ out-sa1" `Quick
          (check_rule Gate.Nand ~input_value:false ~output_value:true);
        Alcotest.test_case "or: in-sa1 ~ out-sa1" `Quick
          (check_rule Gate.Or ~input_value:true ~output_value:true);
        Alcotest.test_case "nor: in-sa1 ~ out-sa0" `Quick
          (check_rule Gate.Nor ~input_value:true ~output_value:false);
        Alcotest.test_case "xor never collapses" `Quick test_xor_no_collapse;
        Alcotest.test_case "not/buf and stem chaining" `Quick test_not_buf_rules;
        Alcotest.test_case "multi-fanout stems kept" `Quick
          test_multi_fanout_stem_not_merged;
        Alcotest.test_case "PO stems kept" `Quick test_po_stem_not_merged;
        Alcotest.test_case "DFFs not collapsed through" `Quick
          test_dff_not_collapsed_through;
      ] );
  ]
