(* Tests for Asc_compact: combining [4], vector omission [8], Phase-3 set
   covering, and the dynamic baseline.  The central properties are the
   coverage-preservation invariants each procedure promises. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

let small_circuit seed =
  Asc_circuits.Profile.make "cmp" 4 3 5 45 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

let coverage c tests ~faults ~targets =
  Bitvec.inter (Asc_scan.Tset.coverage c tests ~faults) targets

(* A little test set from random patterns that detect something. *)
let random_test_set c ~faults rng n =
  let tests = ref [] in
  while List.length !tests < n do
    let p =
      Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c) ~n_ffs:(Circuit.n_dffs c)
    in
    let t = Scan_test.of_pattern p in
    if not (Bitvec.is_empty (Scan_test.detect c t ~faults)) then tests := t :: !tests
  done;
  Array.of_list !tests

(* --- Combine ([4]) ----------------------------------------------------- *)

let prop_combine_preserves_coverage =
  QCheck.Test.make ~name:"combine preserves target coverage and reduces cycles"
    ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 31) in
      let tests = random_test_set c ~faults rng 12 in
      let targets = Asc_scan.Tset.coverage c tests ~faults in
      let before = coverage c tests ~faults ~targets in
      let r = Asc_compact.Combine.run c tests ~faults ~targets in
      let after = coverage c r.tests ~faults ~targets in
      let cycles_before = Asc_scan.Time_model.cycles_of_tests c tests in
      let cycles_after = Asc_scan.Time_model.cycles_of_tests c r.tests in
      Bitvec.subset before after
      && cycles_after <= cycles_before
      && Array.length r.tests = Array.length tests - r.combinations)

let test_combine_chained_pair () =
  (* Two tests where the second's scan-in equals the first's scan-out:
     the combined test replays T_j identically, so the only faults at risk
     are those t1 detected solely through its (removed) scan-out.  Whether
     or not the pair combines, coverage must be preserved exactly. *)
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 9 in
  let si = Rng.bool_array rng 3 in
  let seq1 = Array.init 2 (fun _ -> Rng.bool_array rng 4) in
  let t1 = Scan_test.create ~si ~seq:seq1 in
  let so1 = Scan_test.scan_out c t1 in
  let t2 = Scan_test.create ~si:so1 ~seq:(Array.init 2 (fun _ -> Rng.bool_array rng 4)) in
  let tests = [| t1; t2 |] in
  let targets = Asc_scan.Tset.coverage c tests ~faults in
  let r = Asc_compact.Combine.run c tests ~faults ~targets in
  let after = coverage c r.tests ~faults ~targets in
  Alcotest.(check bool) "coverage preserved" true (Bitvec.equal after targets);
  if r.combinations = 1 then begin
    Alcotest.(check int) "combined into one" 1 (Array.length r.tests);
    Alcotest.(check int) "length 4" 4 (Scan_test.length r.tests.(0))
  end
  else Alcotest.(check int) "pair kept" 2 (Array.length r.tests)

let test_combine_single_test_noop () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 10 in
  let t =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 3 (fun _ -> Rng.bool_array rng 4))
  in
  let targets = Asc_scan.Tset.coverage c [| t |] ~faults in
  let r = Asc_compact.Combine.run c [| t |] ~faults ~targets in
  Alcotest.(check int) "unchanged" 1 (Array.length r.tests);
  Alcotest.(check int) "no attempts" 0 r.combinations

(* --- Vector omission ([8]) --------------------------------------------- *)

let prop_omission_preserves_required =
  QCheck.Test.make ~name:"omission keeps every required fault detected" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 32) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 16 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let test = Scan_test.create ~si ~seq in
      let required = Scan_test.detect c test ~faults in
      let r = Asc_compact.Vector_omission.run c test ~faults ~required in
      let after = Scan_test.detect c r.test ~faults in
      Bitvec.subset required after
      && Scan_test.length r.test = 16 - r.omitted
      && Scan_test.length r.test >= 1)

let test_omission_removes_padding () =
  (* Vectors after the last detection are omitted. *)
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 13 in
  let si = Rng.bool_array rng 3 in
  let core = Array.init 4 (fun _ -> Rng.bool_array rng 4) in
  let test = Scan_test.create ~si ~seq:core in
  let required = Scan_test.detect c test ~faults in
  (* Pad the test with vectors, then require only the original faults:
     omission should strip a good share of the padding. *)
  let padded =
    Scan_test.create ~si ~seq:(Array.append core (Array.make 12 (Array.make 4 false)))
  in
  let r = Asc_compact.Vector_omission.run c padded ~faults ~required in
  Alcotest.(check bool) "substantial removal" true (r.omitted >= 8);
  let after = Scan_test.detect c r.test ~faults in
  Alcotest.(check bool) "required kept" true (Bitvec.subset required after)

(* --- Set cover (Phase 3) ----------------------------------------------- *)

let test_set_cover_paper_rules () =
  (* 4 tests, 5 faults.  Fault 4 is covered only by test 1 (n=1, picked
     first); the rest follow the min-n(f) / last(f) rules. *)
  let m = Bitmat.create 4 5 in
  List.iter (fun (t, f) -> Bitmat.set m t f)
    [ (0, 0); (1, 0); (2, 0); (3, 0); (0, 1); (1, 1); (2, 2); (3, 2); (1, 4); (0, 3); (3, 3) ];
  let undetected = Bitvec.of_list 5 [ 0; 1; 2; 3; 4 ] in
  let r = Asc_compact.Set_cover.select ~matrix:m ~undetected in
  Alcotest.(check bool) "nothing uncovered" true (Bitvec.is_empty r.uncovered);
  (* Fault 4 has n=1 -> test 1 first.  Test 1 covers faults 0,1,4.
     Remaining: 2 (n=2, last=3), 3 (n=2, last=3) -> test 3 covers both. *)
  Alcotest.(check (list int)) "selection" [ 1; 3 ] r.selected

let test_set_cover_uncoverable () =
  let m = Bitmat.create 2 3 in
  Bitmat.set m 0 0;
  Bitmat.set m 1 1;
  let undetected = Bitvec.of_list 3 [ 0; 1; 2 ] in
  let r = Asc_compact.Set_cover.select ~matrix:m ~undetected in
  Alcotest.(check (list int)) "uncovered fault" [ 2 ] (Bitvec.to_list r.uncovered);
  Alcotest.(check int) "both tests needed" 2 (List.length r.selected)

let prop_set_cover_covers =
  QCheck.Test.make ~name:"set cover covers every coverable fault" ~count:50
    QCheck.(pair (int_range 1 12) (int_range 1 40))
    (fun (n_tests, n_faults) ->
      let rng = Rng.create (n_tests * 1000 + n_faults) in
      let m = Bitmat.create n_tests n_faults in
      for t = 0 to n_tests - 1 do
        for f = 0 to n_faults - 1 do
          if Rng.int rng 100 < 25 then Bitmat.set m t f
        done
      done;
      let undetected = Bitvec.create ~default:true n_faults in
      let r = Asc_compact.Set_cover.select ~matrix:m ~undetected in
      let covered = Bitvec.create n_faults in
      List.iter
        (fun t -> Bitvec.union_into ~into:covered (Bitmat.row m t))
        r.selected;
      (* covered + uncovered = everything; uncovered really has n(f)=0. *)
      Bitvec.equal (Bitvec.union covered r.uncovered) undetected
      && Bitvec.fold_set
           (fun acc f -> acc && Bitmat.column_count m f = 0)
           true r.uncovered)

(* --- Dynamic baseline --------------------------------------------------- *)

let test_dynamic_baseline_coverage () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let targets = Bitvec.create ~default:true (Array.length faults) in
  let rng = Rng.create 21 in
  let r = Asc_compact.Dynamic_baseline.run c ~faults ~targets ~rng in
  (* s27 is fully testable: everything detected, nothing unresolved. *)
  Alcotest.(check int) "full coverage" 32 (Bitvec.count r.detected);
  Alcotest.(check int) "no unresolved" 0 (Bitvec.count r.unresolved);
  (* The recorded coverage is real. *)
  let cov = Asc_scan.Tset.coverage c r.tests ~faults in
  Alcotest.(check bool) "coverage verified" true (Bitvec.subset r.detected cov);
  (* Extension produced at least one multi-vector test. *)
  let lengths = Array.map Scan_test.length r.tests in
  Alcotest.(check bool) "some test extends" true (Array.exists (fun l -> l > 1) lengths)

let prop_dynamic_baseline_sound =
  QCheck.Test.make ~name:"dynamic baseline's claimed coverage is real" ~count:5
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let targets = Bitvec.create ~default:true (Array.length faults) in
      let rng = Rng.create (seed + 33) in
      let r = Asc_compact.Dynamic_baseline.run c ~faults ~targets ~rng in
      let cov = Asc_scan.Tset.coverage c r.tests ~faults in
      Bitvec.subset r.detected cov
      && Bitvec.is_empty (Bitvec.inter r.detected r.unresolved))

let suite =
  [
    ( "compact",
      [
        qtest prop_combine_preserves_coverage;
        Alcotest.test_case "combine chained pair" `Quick test_combine_chained_pair;
        Alcotest.test_case "combine single noop" `Quick test_combine_single_test_noop;
        qtest prop_omission_preserves_required;
        Alcotest.test_case "omission removes padding" `Quick test_omission_removes_padding;
        Alcotest.test_case "set cover paper rules" `Quick test_set_cover_paper_rules;
        Alcotest.test_case "set cover uncoverable" `Quick test_set_cover_uncoverable;
        qtest prop_set_cover_covers;
        Alcotest.test_case "dynamic baseline s27" `Quick test_dynamic_baseline_coverage;
        qtest prop_dynamic_baseline_sound;
      ] );
  ]
