(* Tests for Asc_tfault: the delay rule, the structural properties the
   model promises (length-one blindness, launch requirement), and a naive
   cross-check of the parallel simulator. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Scan_test = Asc_scan.Scan_test
module Tfault = Asc_tfault.Tfault

let qtest = QCheck_alcotest.to_alcotest

let small_circuit seed =
  Asc_circuits.Profile.make "tf" 4 3 5 40 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

(* Naive scalar transition-fault simulation of one fault. *)
let naive_detects c (f : Tfault.t) ~si ~seq =
  let n = Circuit.n_gates c in
  let good_state = ref (Array.copy si) in
  let bad_state = ref (Array.copy si) in
  let prev = ref None in
  let detected = ref false in
  Array.iteri
    (fun u pis ->
      let gv = Asc_sim.Naive.eval_comb c ~pis ~state:!good_state in
      (* Faulty machine: recompute with the delay applied at the site. *)
      let bv = Array.make n false in
      Array.iteri (fun i g -> bv.(g) <- pis.(i)) (Circuit.inputs c);
      Array.iteri (fun i g -> bv.(g) <- !bad_state.(i)) (Circuit.dffs c);
      let apply g v =
        if g <> f.gate then v
        else if u = 0 then begin
          prev := Some v;
          v
        end
        else begin
          let p = Option.get !prev in
          let v' =
            if f.rising && (not p) && v then false
            else if (not f.rising) && p && not v then true
            else v
          in
          prev := Some v';
          v'
        end
      in
      Array.iter (fun g -> bv.(g) <- apply g bv.(g)) (Circuit.inputs c);
      Array.iter (fun g -> bv.(g) <- apply g bv.(g)) (Circuit.dffs c);
      Array.iter
        (fun g ->
          let ins =
            Array.to_list (Array.map (fun fin -> bv.(fin)) (Circuit.fanins c g))
          in
          bv.(g) <- apply g (Asc_sim.Naive.eval_gate2 (Circuit.kind c g) ins))
        (Circuit.order c);
      if Asc_sim.Naive.outputs_of c gv <> Asc_sim.Naive.outputs_of c bv then
        detected := true;
      good_state := Asc_sim.Naive.next_state_of c gv;
      bad_state := Asc_sim.Naive.next_state_of c bv)
    seq;
  !detected || !good_state <> !bad_state

let test_universe () =
  let c = Asc_circuits.S27.circuit () in
  Alcotest.(check int) "two polarities per gate" (2 * Circuit.n_gates c)
    (Array.length (Tfault.universe c))

let test_length_one_blind () =
  (* A length-one test detects no transition fault at all. *)
  let c = Asc_circuits.S27.circuit () in
  let faults = Tfault.universe c in
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let t =
      Scan_test.create ~si:(Rng.bool_array rng 3) ~seq:[| Rng.bool_array rng 4 |]
    in
    Alcotest.(check int) "no detection" 0 (Bitvec.count (Tfault.detect c t ~faults))
  done

let test_launch_detects () =
  (* A hand-built two-cycle test on a buffer chain detects the PI's
     slow-to-rise fault: pi 0 -> 1 launches, the PO captures late. *)
  let b = Asc_netlist.Builder.create "launch" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let g = Asc_netlist.Builder.add_gate b Gate.Buf "g" [ a ] in
  Asc_netlist.Builder.add_output b g;
  let c = Asc_netlist.Builder.finalize b in
  let test = Scan_test.create ~si:[||] ~seq:[| [| false |]; [| true |] |] in
  let str_a = { Tfault.gate = a; rising = true } in
  let stf_a = { Tfault.gate = a; rising = false } in
  let det = Tfault.detect c test ~faults:[| str_a; stf_a |] in
  Alcotest.(check bool) "slow-to-rise detected" true (Bitvec.get det 0);
  Alcotest.(check bool) "slow-to-fall needs a fall" false (Bitvec.get det 1)

let prop_matches_naive =
  QCheck.Test.make ~name:"parallel transition simulation matches naive" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Tfault.universe c in
      let rng = Rng.create (seed + 51) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 6 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let test = Scan_test.create ~si ~seq in
      let det = Tfault.detect c test ~faults in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          if Bitvec.get det fi <> naive_detects c f ~si ~seq then ok := false)
        faults;
      !ok)

let test_coverage_drops_and_skips () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Tfault.universe c in
  let rng = Rng.create 8 in
  let long =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 20 (fun _ -> Rng.bool_array rng 4))
  in
  let short =
    Scan_test.create ~si:(Rng.bool_array rng 3) ~seq:[| Rng.bool_array rng 4 |]
  in
  let cov = Tfault.coverage c [| short; long |] ~faults in
  let direct = Tfault.detect c long ~faults in
  Alcotest.(check bool) "set coverage = long test's detection" true
    (Bitvec.equal cov direct);
  Alcotest.(check bool) "long sequences detect transitions" true (Bitvec.count cov > 0)

let suite =
  [
    ( "tfault",
      [
        Alcotest.test_case "universe" `Quick test_universe;
        Alcotest.test_case "length-one blind" `Quick test_length_one_blind;
        Alcotest.test_case "launch detects" `Quick test_launch_detects;
        qtest prop_matches_naive;
        Alcotest.test_case "coverage drops/skips" `Quick test_coverage_drops_and_skips;
      ] );
  ]
