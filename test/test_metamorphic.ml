(* Metamorphic properties: transformations of the inputs with known
   effects on the outputs.  These catch bookkeeping bugs that point tests
   miss, because they compare two full runs of the machinery. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

let random_circuit seed =
  Asc_circuits.Profile.make "mm" 4 3 5 45 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

let random_tests c rng n =
  Array.init n (fun _ ->
      Scan_test.create
        ~si:(Rng.bool_array rng (Circuit.n_dffs c))
        ~seq:
          (Array.init (1 + Rng.int rng 3) (fun _ ->
               Rng.bool_array rng (Circuit.n_inputs c))))

(* Appending a test never lowers coverage and never lowers any per-fault
   detection count. *)
let prop_append_monotone =
  QCheck.Test.make ~name:"appending a test is monotone" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 111) in
      let tests = random_tests c rng 5 in
      let extra = random_tests c rng 1 in
      let before = Asc_scan.Tset.coverage c tests ~faults in
      let after = Asc_scan.Tset.coverage c (Array.append tests extra) ~faults in
      let counts_before = Asc_scan.Tset.detection_counts c tests ~faults in
      let counts_after =
        Asc_scan.Tset.detection_counts c (Array.append tests extra) ~faults
      in
      Bitvec.subset before after
      && Array.for_all2 (fun a b -> b >= a) counts_before counts_after)

(* Reordering a test set changes neither coverage nor cycles. *)
let prop_permutation_invariant =
  QCheck.Test.make ~name:"test-set order does not change coverage or cycles" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 112) in
      let tests = random_tests c rng 6 in
      let shuffled = Array.copy tests in
      Rng.shuffle rng shuffled;
      Bitvec.equal
        (Asc_scan.Tset.coverage c tests ~faults)
        (Asc_scan.Tset.coverage c shuffled ~faults)
      && Asc_scan.Time_model.cycles_of_tests c tests
         = Asc_scan.Time_model.cycles_of_tests c shuffled)

(* Extending a scan test's sequence never loses PO-detected faults (the
   prefix is unchanged); only scan-out-detected ones may decay. *)
let prop_extension_keeps_po_detections =
  QCheck.Test.make ~name:"extending a test keeps PO detections" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 113) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 5 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      let prof = Asc_fault.Seq_fsim.profile c ~si ~seq ~faults ~subset in
      let longer =
        Array.append seq
          (Array.init 3 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)))
      in
      let det_longer = Asc_fault.Seq_fsim.detect c ~si ~seq:longer ~faults in
      let ok = ref true in
      Array.iteri
        (fun k fi ->
          if prof.po_time.(k) < 5 && not (Bitvec.get det_longer fi) then ok := false)
        subset;
      !ok)

(* A fault-free "defect" produces an all-pass observation, and diagnosis
   then ranks genuinely-undetected faults (empty signatures) at distance
   zero. *)
let prop_all_pass_observation =
  QCheck.Test.make ~name:"all-pass observation matches undetected faults" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 114) in
      let tests = random_tests c rng 5 in
      let dict = Asc_diag.Diag.build c tests ~faults in
      let observed = Bitvec.create (Array.length tests) in
      let matches = Asc_diag.Diag.perfect_matches dict ~observed in
      let coverage = Asc_scan.Tset.coverage c tests ~faults in
      List.for_all (fun fi -> not (Bitvec.get coverage fi)) matches
      && List.length matches = Array.length faults - Bitvec.count coverage)

(* Injecting the same fault twice (same overrides listed twice) changes
   nothing: override application is idempotent. *)
let prop_override_idempotent =
  QCheck.Test.make ~name:"duplicate overrides are idempotent" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Rng.create (seed + 115) in
      let g = Rng.int rng (Circuit.n_gates c) in
      let stuck = Rng.bool rng in
      let once = [ Asc_sim.Override.output ~gate:g ~stuck ~lanes:Word.mask ] in
      let twice = once @ once in
      let run ovr =
        let e = Asc_sim.Engine2.create c ovr in
        Asc_sim.Engine2.set_state_bools e (Rng.bool_array (Rng.create seed) (Circuit.n_dffs c));
        Asc_sim.Engine2.eval e
          ~pi_words:(Array.init (Circuit.n_inputs c) (fun i -> (i * 77) land Word.mask));
        Array.init (Circuit.n_outputs c) (Asc_sim.Engine2.po_word e)
      in
      run once = run twice)

let suite =
  [
    ( "metamorphic",
      [
        qtest prop_append_monotone;
        qtest prop_permutation_invariant;
        qtest prop_extension_keeps_po_detections;
        qtest prop_all_pass_observation;
        qtest prop_override_idempotent;
      ] );
  ]
