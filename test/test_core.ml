(* Tests for Asc_core: Phase 1's selection rules (including brute-force
   cross-checks of the scan-out choice), the end-to-end pipeline
   invariants, and the static baseline. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse
module Pipeline = Asc_core.Pipeline
module Phase1 = Asc_core.Phase1

let qtest = QCheck_alcotest.to_alcotest

let small_circuit seed =
  Asc_circuits.Profile.make "core" 4 3 6 50 ~t0_budget:30
  |> Asc_circuits.Generator.generate ~seed

let setup seed =
  let c = small_circuit seed in
  let faults = Collapse.reps (Collapse.run c) in
  let targets = Bitvec.create ~default:true (Array.length faults) in
  let rng = Rng.create (seed + 41) in
  let t0 = Asc_atpg.Random_tgen.generate rng ~n_pis:(Circuit.n_inputs c) ~len:12 in
  let candidates =
    Array.init 6 (fun _ ->
        Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c) ~n_ffs:(Circuit.n_dffs c))
  in
  (c, faults, targets, t0, candidates)

(* --- Phase 1 scan-in selection ----------------------------------------- *)

let prop_scan_in_maximises =
  QCheck.Test.make ~name:"scan-in choice maximises detections over candidates"
    ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c, faults, targets, t0, candidates = setup seed in
      let f0 = Bitvec.inter (Asc_fault.Seq_fsim.detect_no_scan c ~seq:t0 ~faults) targets in
      let selected = Bitvec.create (Array.length candidates) in
      let choice =
        Phase1.select_scan_in c ~faults ~candidates ~t0 ~f0 ~targets ~selected
      in
      (* Brute force: count F - F0 detections per candidate. *)
      let count j =
        let det =
          Asc_fault.Seq_fsim.detect c ~si:candidates.(j).Asc_sim.Pattern.state ~seq:t0
            ~faults
        in
        Bitvec.count (Bitvec.diff (Bitvec.inter det targets) f0)
      in
      let counts = Array.init (Array.length candidates) count in
      let best = Array.fold_left max 0 counts in
      (not choice.already_selected)
      && counts.(choice.index) = best
      (* F_SI includes F0. *)
      && Bitvec.subset f0 choice.f_si)

let test_scan_in_prefers_unselected () =
  let c, faults, targets, t0, candidates = setup 7 in
  let f0 = Bitvec.create (Array.length faults) in
  let selected = Bitvec.create (Array.length candidates) in
  let first = Phase1.select_scan_in c ~faults ~candidates ~t0 ~f0 ~targets ~selected in
  Bitvec.set selected first.index;
  let second = Phase1.select_scan_in c ~faults ~candidates ~t0 ~f0 ~targets ~selected in
  if second.already_selected then
    (* Only legal when it is strictly better than every unselected one. *)
    Alcotest.(check int) "repeat is the same best" first.index second.index
  else Alcotest.(check bool) "fresh pick" true (second.index <> first.index)

(* --- Phase 1 scan-out selection ----------------------------------------- *)

(* The chosen u is the *minimum* u whose truncated test keeps all of F_SI
   — cross-checked against brute-force truncation. *)
let prop_scan_out_minimal =
  QCheck.Test.make ~name:"scan-out time is the paper's minimal i0" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c, faults, targets, t0, candidates = setup seed in
      let si = candidates.(0).Asc_sim.Pattern.state in
      let det = Bitvec.inter (Asc_fault.Seq_fsim.detect c ~si ~seq:t0 ~faults) targets in
      let choice = Phase1.select_scan_out c ~faults ~si ~t0 ~f_si:det ~targets in
      let keeps u =
        let truncated = Array.sub t0 0 (u + 1) in
        let d = Asc_fault.Seq_fsim.detect c ~si ~seq:truncated ~faults in
        Bitvec.subset det d
      in
      keeps choice.u
      && (choice.u = 0 || not (keeps (choice.u - 1)))
      (* And F_SO really is the truncated test's full detection set. *)
      && Bitvec.equal choice.f_so
           (Bitvec.inter
              (Asc_fault.Seq_fsim.detect c ~si ~seq:(Array.sub t0 0 (choice.u + 1)) ~faults)
              targets))

(* --- End-to-end pipeline ------------------------------------------------ *)

let run_s298 =
  (* One shared full run on the s298 stand-in (directed T0). *)
  lazy
    (let c = Asc_circuits.Registry.get "s298" in
     let config =
       { Pipeline.default_config with t0_source = Pipeline.Directed 120 }
     in
     let prepared = Pipeline.prepare ~config c in
     (c, prepared, Pipeline.run ~config prepared))

let test_pipeline_coverage_monotone () =
  let _, prepared, r = Lazy.force run_s298 in
  (* F0 <= |F_seq| <= |final|. *)
  Alcotest.(check bool) "F0 <= Fseq" true (r.f0_count <= Bitvec.count r.f_seq);
  Alcotest.(check bool) "Fseq <= final" true
    (Bitvec.count r.f_seq <= Bitvec.count r.final_detected);
  (* Final coverage reaches every target C can detect. *)
  let reachable =
    Bitvec.union r.f_seq (Bitvec.inter prepared.comb_detected prepared.targets)
  in
  Alcotest.(check bool) "final covers reachable" true
    (Bitvec.subset reachable r.final_detected)

let test_pipeline_cycles () =
  let c, _, r = Lazy.force run_s298 in
  Alcotest.(check bool) "phase 4 never hurts" true (r.cycles_final <= r.cycles_initial);
  (* The reported cycle counts match the model. *)
  Alcotest.(check int) "initial cycles"
    (Asc_scan.Time_model.cycles_of_tests c r.initial_tests)
    r.cycles_initial;
  Alcotest.(check int) "final cycles"
    (Asc_scan.Time_model.cycles_of_tests c r.final_tests)
    r.cycles_final;
  (* tau_seq leads the initial set; added tests have length one. *)
  Alcotest.(check bool) "tau_seq first" true
    (Scan_test.equal r.initial_tests.(0) r.tau_seq);
  Array.iter
    (fun t -> Alcotest.(check int) "added length 1" 1 (Scan_test.length t))
    r.added

let test_pipeline_fseq_is_tau_seq_coverage () =
  let c, prepared, r = Lazy.force run_s298 in
  let det =
    Bitvec.inter (Scan_test.detect c r.tau_seq ~faults:prepared.faults) prepared.targets
  in
  Alcotest.(check bool) "f_seq consistent" true (Bitvec.equal det r.f_seq)

let test_pipeline_deterministic () =
  let c = Asc_circuits.Registry.get "s344" in
  let config = { Pipeline.default_config with t0_source = Pipeline.Directed 60 } in
  let p1 = Pipeline.prepare ~config c in
  let r1 = Pipeline.run ~config p1 in
  let p2 = Pipeline.prepare ~config c in
  let r2 = Pipeline.run ~config p2 in
  Alcotest.(check int) "same cycles" r1.cycles_final r2.cycles_final;
  Alcotest.(check int) "same added" (Array.length r1.added) (Array.length r2.added);
  Alcotest.(check bool) "same tau_seq" true (Scan_test.equal r1.tau_seq r2.tau_seq)

let test_static_baseline () =
  let _, prepared, _ = Lazy.force run_s298 in
  let b = Asc_core.Baseline_static.run prepared in
  Alcotest.(check int) "init tests = |C|" (Array.length prepared.comb_tests)
    (Array.length b.initial_tests);
  Alcotest.(check bool) "compaction helps or neutral" true
    (b.cycles_final <= b.cycles_initial);
  (* Coverage of the compacted set still includes everything C detected. *)
  let c = prepared.circuit in
  let cov =
    Bitvec.inter
      (Asc_scan.Tset.coverage c b.final_tests ~faults:prepared.faults)
      prepared.targets
  in
  Alcotest.(check bool) "coverage preserved" true
    (Bitvec.subset (Bitvec.inter prepared.comb_detected prepared.targets) cov)

(* N_cyc regression: recompute the paper's Section-2 cost formula
   (k + 1) * N_SV + sum_j L(T_j) directly from the final test sets —
   without Time_model — and check it against the figures the pipeline
   and the baseline report, on two circuits. *)
let n_cyc_by_hand c (tests : Scan_test.t array) =
  let k = Array.length tests in
  let n_sv = Circuit.n_dffs c in
  if k = 0 then 0
  else ((k + 1) * n_sv) + Array.fold_left (fun acc t -> acc + Scan_test.length t) 0 tests

let test_n_cyc_regression () =
  (* s298: pipeline initial/final and the static baseline. *)
  let c, prepared, r = Lazy.force run_s298 in
  Alcotest.(check int) "s298 initial N_cyc" (n_cyc_by_hand c r.initial_tests)
    r.cycles_initial;
  Alcotest.(check int) "s298 final N_cyc" (n_cyc_by_hand c r.final_tests) r.cycles_final;
  let b = Asc_core.Baseline_static.run prepared in
  Alcotest.(check int) "s298 baseline initial N_cyc"
    (n_cyc_by_hand c b.initial_tests) b.cycles_initial;
  Alcotest.(check int) "s298 baseline final N_cyc" (n_cyc_by_hand c b.final_tests)
    b.cycles_final;
  (* s344: a second, independent run. *)
  let c2 = Asc_circuits.Registry.get "s344" in
  let config = { Pipeline.default_config with t0_source = Pipeline.Directed 60 } in
  let p2 = Pipeline.prepare ~config c2 in
  let r2 = Pipeline.run ~config p2 in
  Alcotest.(check int) "s344 initial N_cyc" (n_cyc_by_hand c2 r2.initial_tests)
    r2.cycles_initial;
  Alcotest.(check int) "s344 final N_cyc" (n_cyc_by_hand c2 r2.final_tests)
    r2.cycles_final

let test_pipeline_random_t0 () =
  let c = Asc_circuits.Registry.get "s344" in
  let config = { Pipeline.default_config with t0_source = Pipeline.Random_seq 200 } in
  let prepared = Pipeline.prepare ~config c in
  let r = Pipeline.run ~config prepared in
  Alcotest.(check int) "T0 length" 200 r.t0_length;
  Alcotest.(check bool) "tau_seq no longer than T0" true
    (Scan_test.length r.tau_seq <= 200);
  Alcotest.(check bool) "cycles sane" true (r.cycles_final <= r.cycles_initial)

let suite =
  [
    ( "core",
      [
        qtest prop_scan_in_maximises;
        Alcotest.test_case "scan-in prefers unselected" `Quick test_scan_in_prefers_unselected;
        qtest prop_scan_out_minimal;
        Alcotest.test_case "pipeline coverage monotone" `Quick test_pipeline_coverage_monotone;
        Alcotest.test_case "pipeline cycle model" `Quick test_pipeline_cycles;
        Alcotest.test_case "f_seq = tau_seq coverage" `Quick test_pipeline_fseq_is_tau_seq_coverage;
        Alcotest.test_case "pipeline deterministic" `Quick test_pipeline_deterministic;
        Alcotest.test_case "static baseline" `Quick test_static_baseline;
        Alcotest.test_case "N_cyc formula regression" `Quick test_n_cyc_regression;
        Alcotest.test_case "pipeline random T0" `Quick test_pipeline_random_t0;
      ] );
  ]
