(* Tests for Asc_diag: dictionary construction, diagnosis of injected
   faults, resolution metrics. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse
module Diag = Asc_diag.Diag

let qtest = QCheck_alcotest.to_alcotest

let setup seed =
  let c =
    Asc_circuits.Profile.make "diag" 4 3 5 40 ~t0_budget:10
    |> Asc_circuits.Generator.generate ~seed
  in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create (seed + 81) in
  let tests =
    Array.init 10 (fun _ ->
        Scan_test.create
          ~si:(Rng.bool_array rng (Circuit.n_dffs c))
          ~seq:
            (Array.init (1 + Rng.int rng 3) (fun _ ->
                 Rng.bool_array rng (Circuit.n_inputs c))))
  in
  (c, faults, tests)

(* Injecting any modelled fault and diagnosing must place it among the
   distance-0 candidates. *)
let prop_injected_fault_diagnosed =
  QCheck.Test.make ~name:"injected faults are perfectly diagnosed" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c, faults, tests = setup seed in
      let dict = Diag.build c tests ~faults in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          let observed = Diag.observe c tests ~fault:f in
          if not (List.mem fi (Diag.perfect_matches dict ~observed)) then ok := false)
        faults;
      !ok)

(* The diagnose ranking is sorted by distance and covers every fault. *)
let prop_diagnose_sorted =
  QCheck.Test.make ~name:"diagnosis ranking is sorted and complete" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c, faults, tests = setup seed in
      let dict = Diag.build c tests ~faults in
      let rng = Rng.create (seed + 82) in
      let observed =
        Bitvec.init (Array.length tests) (fun _ -> Rng.bool rng)
      in
      let ranked = Diag.diagnose dict ~observed in
      Array.length ranked = Array.length faults
      && Array.for_all Fun.id
           (Array.init
              (Array.length ranked - 1)
              (fun i -> ranked.(i).Diag.distance <= ranked.(i + 1).Diag.distance)))

let test_signature_matches_matrix () =
  let c, faults, tests = setup 3 in
  let dict = Diag.build c tests ~faults in
  (* Signature bit (test t) equals per-test detection. *)
  Array.iteri
    (fun fi f ->
      let s = Diag.signature dict fi in
      Array.iteri
        (fun ti test ->
          let det = Scan_test.detect c test ~faults:[| f |] in
          Alcotest.(check bool) "signature bit" (Bitvec.get det 0) (Bitvec.get s ti))
        tests)
    (Array.sub faults 0 (min 8 (Array.length faults)))

let test_resolution_metrics () =
  let c, faults, tests = setup 5 in
  let dict = Diag.build c tests ~faults in
  let hist = Diag.resolution_histogram dict in
  (* Histogram masses add up to the fault count. *)
  let total = List.fold_left (fun acc (size, count) -> acc + (size * count)) 0 hist in
  Alcotest.(check int) "histogram covers all faults" (Array.length faults) total;
  let u = Diag.unique_resolution dict in
  Alcotest.(check bool) "unique resolution in [0,1]" true (u >= 0.0 && u <= 1.0);
  (* The empty test set resolves nothing. *)
  let c27 = Asc_circuits.S27.circuit () in
  let f27 = Collapse.reps (Collapse.run c27) in
  let empty = Diag.build c27 [||] ~faults:f27 in
  Alcotest.(check (float 1e-9)) "no tests, no resolution" 0.0
    (Diag.unique_resolution empty)

(* More tests means never-worse resolution. *)
let prop_resolution_monotone =
  QCheck.Test.make ~name:"adding tests never lowers unique resolution" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c, faults, tests = setup seed in
      let half = Array.sub tests 0 (Array.length tests / 2) in
      let d_half = Diag.build c half ~faults in
      let d_full = Diag.build c tests ~faults in
      Diag.unique_resolution d_full >= Diag.unique_resolution d_half -. 1e-9)

let suite =
  [
    ( "diag",
      [
        qtest prop_injected_fault_diagnosed;
        qtest prop_diagnose_sorted;
        Alcotest.test_case "signature = matrix" `Quick test_signature_matches_matrix;
        Alcotest.test_case "resolution metrics" `Quick test_resolution_metrics;
        qtest prop_resolution_monotone;
      ] );
  ]
