(* PODEM on hand-built textbook circuits with known outcomes: redundancy
   through reconvergent fanout, multi-level propagation requirements, and
   observability blocking. *)

module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder
module Fault = Asc_fault.Fault
module Podem = Asc_atpg.Podem

(* y = OR(a, NOT a): constant 1 — the OR output stuck-at-1 is redundant,
   stuck-at-0 is testable... also redundant!  (No assignment makes y = 0,
   so sa0 can never be *distinguished* — y is always 1 in the good circuit
   and always 0 in the faulty one, which IS detectable.)  Work it out:
   good y = 1 always, faulty y = 0 always: any input detects sa0; sa1 is
   undetectable. *)
let test_constant_or () =
  let b = Builder.create "const_or" in
  let a = Builder.add_input b "a" in
  let na = Builder.add_gate b Gate.Not "na" [ a ] in
  let y = Builder.add_gate b Gate.Or "y" [ a; na ] in
  Builder.add_output b y;
  let c = Builder.finalize b in
  let podem = Podem.create c in
  (match Podem.run podem (Fault.output y true) with
  | Podem.Redundant -> ()
  | _ -> Alcotest.fail "y/sa1 must be redundant (y is constant 1)");
  match Podem.run podem (Fault.output y false) with
  | Podem.Test _ -> ()
  | _ -> Alcotest.fail "y/sa0 must be testable (any input works)"

(* The classic masking case: z = AND(a, b) observed only through
   w = AND(z, NOT a)?  w is constant 0 (z = 1 requires a = 1, killing
   NOT a), so z's faults are unobservable there; with w as the only
   output, z/sa0 is redundant. *)
let test_reconvergent_masking () =
  let b = Builder.create "mask" in
  let a = Builder.add_input b "a" in
  let b_in = Builder.add_input b "b" in
  let z = Builder.add_gate b Gate.And "z" [ a; b_in ] in
  let na = Builder.add_gate b Gate.Not "na" [ a ] in
  let w = Builder.add_gate b Gate.And "w" [ z; na ] in
  Builder.add_output b w;
  let c = Builder.finalize b in
  let podem = Podem.create c in
  (match Podem.run podem (Fault.output z false) with
  | Podem.Redundant -> ()
  | Podem.Test _ -> Alcotest.fail "z/sa0 must be redundant (w is constant 0)"
  | Podem.Aborted -> Alcotest.fail "tiny circuit must not abort");
  (* z stuck-at-1 un-masks w: with a = 0, b = X: faulty z = 1, na = 1 ->
     faulty w = 1 vs good w = 0.  Testable. *)
  match Podem.run podem (Fault.output z true) with
  | Podem.Test cube ->
      Alcotest.(check bool) "a must be 0" true (cube.pis.(0) = Asc_atpg.Cube.Zero)
  | _ -> Alcotest.fail "z/sa1 must be testable"

(* Multi-level propagation: a 3-deep AND chain needs every side input
   at 1. *)
let test_deep_propagation () =
  let b = Builder.create "chain" in
  let x = Builder.add_input b "x" in
  let s1 = Builder.add_input b "s1" in
  let s2 = Builder.add_input b "s2" in
  let s3 = Builder.add_input b "s3" in
  let g1 = Builder.add_gate b Gate.And "g1" [ x; s1 ] in
  let g2 = Builder.add_gate b Gate.And "g2" [ g1; s2 ] in
  let g3 = Builder.add_gate b Gate.And "g3" [ g2; s3 ] in
  Builder.add_output b g3;
  let c = Builder.finalize b in
  let podem = Podem.create c in
  match Podem.run podem (Fault.output x false) with
  | Podem.Test cube ->
      List.iteri
        (fun i expected ->
          Alcotest.(check bool)
            (Printf.sprintf "input %d" i)
            true
            (cube.pis.(i) = expected))
        [ Asc_atpg.Cube.One; Asc_atpg.Cube.One; Asc_atpg.Cube.One; Asc_atpg.Cube.One ]
  | _ -> Alcotest.fail "x/sa0 must be testable"

(* Scan observability: a fault whose only path is into a flip-flop is
   testable thanks to the scan-out. *)
let test_scan_observability () =
  let b = Builder.create "scanobs" in
  let a = Builder.add_input b "a" in
  let q = Builder.add_dff b "q" in
  let g = Builder.add_gate b Gate.Not "g" [ a ] in
  Builder.set_dff_input b q g;
  (* q drives nothing; the circuit's PO is an unrelated buffer of a. *)
  let po = Builder.add_gate b Gate.Buf "po" [ a ] in
  Builder.add_output b po;
  let c = Builder.finalize b in
  let podem = Podem.create c in
  match Podem.run podem (Fault.output g false) with
  | Podem.Test cube ->
      (* Excite NOT's sa0: need a = 0. *)
      Alcotest.(check bool) "a = 0" true (cube.pis.(0) = Asc_atpg.Cube.Zero)
  | _ -> Alcotest.fail "g/sa0 must be testable via the scan-out"

(* PI faults on a fanout stem reaching two POs. *)
let test_stem_fault () =
  let b = Builder.create "stem" in
  let a = Builder.add_input b "a" in
  let p = Builder.add_gate b Gate.Buf "p" [ a ] in
  let q = Builder.add_gate b Gate.Not "q" [ a ] in
  Builder.add_output b p;
  Builder.add_output b q;
  let c = Builder.finalize b in
  let podem = Podem.create c in
  List.iter
    (fun stuck ->
      match Podem.run podem (Fault.output a stuck) with
      | Podem.Test cube ->
          Alcotest.(check bool) "excitation value" true
            (cube.pis.(0) = if stuck then Asc_atpg.Cube.Zero else Asc_atpg.Cube.One)
      | _ -> Alcotest.fail "stem fault must be testable")
    [ true; false ]

let suite =
  [
    ( "podem-textbook",
      [
        Alcotest.test_case "constant OR" `Quick test_constant_or;
        Alcotest.test_case "reconvergent masking" `Quick test_reconvergent_masking;
        Alcotest.test_case "deep propagation" `Quick test_deep_propagation;
        Alcotest.test_case "scan observability" `Quick test_scan_observability;
        Alcotest.test_case "stem fault" `Quick test_stem_fault;
      ] );
  ]
