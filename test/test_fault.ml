(* Tests for Asc_fault: the fault universe, equivalence collapsing, and
   both fault simulators cross-checked against naive per-fault simulation. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Fault = Asc_fault.Fault
module Collapse = Asc_fault.Collapse
module Naive = Asc_sim.Naive

let qtest = QCheck_alcotest.to_alcotest

let small_circuit seed =
  Asc_circuits.Profile.make "fs" 4 3 5 45 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

(* Naive faulty evaluation: recompute the whole circuit with the fault
   spliced into the evaluation, 2-valued. *)
let naive_faulty_eval c (f : Fault.t) ~pis ~state =
  let n = Circuit.n_gates c in
  let v = Array.make n false in
  let forced g value = if f.pin = -1 && f.gate = g then f.stuck else value in
  Array.iteri (fun i g -> v.(g) <- forced g pis.(i)) (Circuit.inputs c);
  Array.iteri (fun i g -> v.(g) <- forced g state.(i)) (Circuit.dffs c);
  Array.iter
    (fun g ->
      let ins =
        Array.to_list
          (Array.mapi
             (fun k fin -> if f.gate = g && f.pin = k then f.stuck else v.(fin))
             (Circuit.fanins c g))
      in
      v.(g) <- forced g (Naive.eval_gate2 (Circuit.kind c g) ins))
    (Circuit.order c);
  v

let naive_faulty_next_state c (f : Fault.t) v =
  Array.map
    (fun d ->
      let din = Circuit.dff_input c d in
      if f.gate = d && f.pin = 0 then f.stuck else v.(din))
    (Circuit.dffs c)

(* Naive scan-test detection of one fault. *)
let naive_detects c (f : Fault.t) ~si ~seq =
  let good_state = ref (Array.copy si) in
  let bad_state = ref (Array.copy si) in
  let detected = ref false in
  Array.iter
    (fun pis ->
      let gv = Naive.eval_comb c ~pis ~state:!good_state in
      let bv = naive_faulty_eval c f ~pis ~state:!bad_state in
      if Naive.outputs_of c gv <> Naive.outputs_of c bv then detected := true;
      good_state := Naive.next_state_of c gv;
      bad_state := naive_faulty_next_state c f bv)
    seq;
  !detected || !good_state <> !bad_state

(* --- Universe and collapsing ----------------------------------------- *)

let test_universe_s27 () =
  let c = Asc_circuits.S27.circuit () in
  let u = Fault.universe c in
  (* 2 output faults per gate + 2 per input pin. *)
  let pins =
    Array.to_list (Array.init (Circuit.n_gates c) (Circuit.fanins c))
    |> List.map Array.length |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "universe size" ((2 * Circuit.n_gates c) + (2 * pins))
    (Array.length u);
  let col = Collapse.run c in
  (* The standard collapsed count for s27 is 32. *)
  Alcotest.(check int) "collapsed classes" 32 (Collapse.n_classes col)

(* Equivalence soundness: every fault behaves exactly like its class
   representative on random scan tests. *)
let prop_collapse_sound =
  QCheck.Test.make ~name:"collapsed faults are behaviourally equivalent" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let col = Collapse.run c in
      let u = Collapse.universe col in
      let reps = Collapse.reps col in
      let rng = Rng.create (seed + 17) in
      let ok = ref true in
      for _ = 1 to 3 do
        let si = Rng.bool_array rng (Circuit.n_dffs c) in
        let seq = Array.init 4 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
        Array.iteri
          (fun i f ->
            let rep = reps.(Collapse.rep_of col i) in
            if naive_detects c f ~si ~seq <> naive_detects c rep ~si ~seq then ok := false)
          u
      done;
      !ok)

(* --- Combinational fault simulation ---------------------------------- *)

let prop_comb_fsim_matches_naive =
  QCheck.Test.make ~name:"Comb_fsim matches naive detection" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 3) in
      let patterns =
        Array.init 70 (fun _ ->
            Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c)
              ~n_ffs:(Circuit.n_dffs c))
      in
      let mat = Asc_fault.Comb_fsim.detect_matrix c ~patterns ~faults in
      let ok = ref true in
      Array.iteri
        (fun pi (p : Asc_sim.Pattern.t) ->
          Array.iteri
            (fun fi f ->
              let expected = naive_detects c f ~si:p.state ~seq:[| p.pis |] in
              if Bitmat.get mat pi fi <> expected then ok := false)
            faults)
        patterns;
      !ok)

(* --- Sequential fault simulation -------------------------------------- *)

let prop_seq_detect_matches_naive =
  QCheck.Test.make ~name:"Seq_fsim.detect matches naive detection" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 5) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 7 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let det = Asc_fault.Seq_fsim.detect c ~si ~seq ~faults in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          if Bitvec.get det fi <> naive_detects c f ~si ~seq then ok := false)
        faults;
      !ok)

(* The profile is consistent with truncated-test detection: for every
   scan-out time u, the faults marked detected-at-u by the profile are
   exactly those Seq_fsim.detect reports on the truncated test. *)
let prop_profile_matches_truncation =
  QCheck.Test.make ~name:"profile agrees with truncated detection" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 7) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let len = 6 in
      let seq = Array.init len (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      let prof = Asc_fault.Seq_fsim.profile c ~si ~seq ~faults ~subset in
      let ok = ref true in
      for u = 0 to len - 1 do
        let at_u = Asc_fault.Seq_fsim.profile_detected_at prof ~u in
        let truncated = Array.sub seq 0 (u + 1) in
        let det = Asc_fault.Seq_fsim.detect c ~si ~seq:truncated ~faults in
        Array.iteri
          (fun k fi -> if Bitvec.get at_u k <> Bitvec.get det fi then ok := false)
          subset
      done;
      !ok)

let prop_candidate_detections_match =
  QCheck.Test.make ~name:"candidate matrix matches per-candidate detection" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 9) in
      let sis = Array.init 5 (fun _ -> Rng.bool_array rng (Circuit.n_dffs c)) in
      let seq = Array.init 5 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      let mat = Asc_fault.Seq_fsim.candidate_detections c ~sis ~seq ~faults ~subset in
      let ok = ref true in
      Array.iteri
        (fun ci si ->
          let det = Asc_fault.Seq_fsim.detect c ~si ~seq ~faults in
          Array.iteri
            (fun fi _ -> if Bitmat.get mat ci fi <> Bitvec.get det fi then ok := false)
            faults)
        sis;
      !ok)

let prop_verify_required_consistent =
  QCheck.Test.make ~name:"verify_required agrees with detect" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 11) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 5 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let det = Asc_fault.Seq_fsim.detect c ~si ~seq ~faults in
      let detected = Array.of_list (Bitvec.to_list det) in
      let all = Array.init (Array.length faults) (fun i -> i) in
      Asc_fault.Seq_fsim.verify_required c ~si ~seq ~faults ~subset:detected
      && Asc_fault.Seq_fsim.verify_required c ~si ~seq ~faults ~subset:all
         = (Bitvec.count det = Array.length faults))

(* --- 3-valued no-scan detection --------------------------------------- *)

(* Soundness: a fault reported detected without scan must be detected by
   the same sequence from every concrete initial state. *)
let prop_no_scan_sound =
  QCheck.Test.make ~name:"detect_no_scan sound wrt concrete initial states" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 13) in
      let seq = Array.init 8 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let det = Asc_fault.Seq_fsim.detect_no_scan c ~seq ~faults in
      let ok = ref true in
      for _ = 1 to 4 do
        let si = Rng.bool_array rng (Circuit.n_dffs c) in
        (* PO-only detection from a concrete state: drop the final-state
           term by checking the naive PO trajectories. *)
        Bitvec.iter_set
          (fun fi ->
            let f = faults.(fi) in
            let good_state = ref (Array.copy si) and bad_state = ref (Array.copy si) in
            let po_diff = ref false in
            Array.iter
              (fun pis ->
                let gv = Naive.eval_comb c ~pis ~state:!good_state in
                let bv = naive_faulty_eval c f ~pis ~state:!bad_state in
                if Naive.outputs_of c gv <> Naive.outputs_of c bv then po_diff := true;
                good_state := Naive.next_state_of c gv;
                bad_state := naive_faulty_next_state c f bv)
              seq;
            if not !po_diff then ok := false)
          det
      done;
      !ok)

(* --- Incremental 3-valued co-simulation ------------------------------- *)

let prop_inc3_matches_batch =
  QCheck.Test.make ~name:"inc3 incremental = one-shot no-scan detection" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 15) in
      let seq = Array.init 12 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let inc = Asc_fault.Seq_fsim.inc3_create c faults in
      (* Commit in uneven chunks. *)
      let (_ : int) = Asc_fault.Seq_fsim.inc3_commit inc (Array.sub seq 0 5) in
      let (_ : int) = Asc_fault.Seq_fsim.inc3_commit inc (Array.sub seq 5 3) in
      let (_ : int) = Asc_fault.Seq_fsim.inc3_commit inc (Array.sub seq 8 4) in
      let batch = Asc_fault.Seq_fsim.detect_no_scan c ~seq ~faults in
      Bitvec.equal (Asc_fault.Seq_fsim.inc3_detected inc) batch)

let prop_inc3_peek_no_commit =
  QCheck.Test.make ~name:"inc3_peek does not change state" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 16) in
      let inc = Asc_fault.Seq_fsim.inc3_create c faults in
      let seg () = Array.init 4 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let s1 = seg () and s2 = seg () in
      let (_ : int) = Asc_fault.Seq_fsim.inc3_commit inc s1 in
      let p1 = Asc_fault.Seq_fsim.inc3_peek inc s2 in
      let p2 = Asc_fault.Seq_fsim.inc3_peek inc s2 in
      let after_commit = Asc_fault.Seq_fsim.inc3_commit inc s2 in
      p1 = p2 && p1 = after_commit)

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "s27 universe and collapse" `Quick test_universe_s27;
        qtest prop_collapse_sound;
        qtest prop_comb_fsim_matches_naive;
        qtest prop_seq_detect_matches_naive;
        qtest prop_profile_matches_truncation;
        qtest prop_candidate_detections_match;
        qtest prop_verify_required_consistent;
        qtest prop_no_scan_sound;
        qtest prop_inc3_matches_batch;
        qtest prop_inc3_peek_no_commit;
      ] );
  ]
