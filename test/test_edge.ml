(* Edge cases across the stack: constant gates, degenerate circuits, the
   incremental simulator's group compaction, wide gates. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

(* A circuit with constant sources: y = AND(a, c1), z = OR(a, c0). *)
let with_constants () =
  let b = Builder.create "consts" in
  let a = Builder.add_input b "a" in
  let c1 = Builder.add_const b true "one" in
  let c0 = Builder.add_const b false "zero" in
  let y = Builder.add_gate b Gate.And "y" [ a; c1 ] in
  let z = Builder.add_gate b Gate.Or "z" [ a; c0 ] in
  Builder.add_output b y;
  Builder.add_output b z;
  Builder.finalize b

let test_constants_simulate () =
  let c = with_constants () in
  let v = Asc_sim.Naive.eval_comb c ~pis:[| true |] ~state:[||] in
  Alcotest.(check bool) "y = a" true (Asc_sim.Naive.outputs_of c v).(0);
  Alcotest.(check bool) "z = a" true (Asc_sim.Naive.outputs_of c v).(1);
  let e = Asc_sim.Engine2.create c [] in
  Asc_sim.Engine2.eval e ~pi_words:[| 0 |];
  Alcotest.(check int) "word y = 0" 0 (Asc_sim.Engine2.po_word e 0);
  Asc_sim.Engine2.eval e ~pi_words:[| Word.mask |];
  Alcotest.(check int) "word y = 1s" Word.mask (Asc_sim.Engine2.po_word e 0)

let test_constants_podem () =
  let c = with_constants () in
  let podem = Asc_atpg.Podem.create c in
  (* The constant-1 line stuck at 1 is redundant; stuck at 0 is testable. *)
  (match Circuit.find_signal c "one" with
  | None -> Alcotest.fail "missing const"
  | Some one -> (
      (match Asc_atpg.Podem.run podem (Asc_fault.Fault.output one true) with
      | Asc_atpg.Podem.Redundant -> ()
      | _ -> Alcotest.fail "sa1 on constant-1 must be redundant");
      match Asc_atpg.Podem.run podem (Asc_fault.Fault.output one false) with
      | Asc_atpg.Podem.Test _ -> ()
      | _ -> Alcotest.fail "sa0 on constant-1 must be testable"))

let test_constants_full_pipeline () =
  let c = with_constants () in
  (* No flip-flops at all: the procedure degenerates to combinational
     testing with zero-cost scans; it must not crash. *)
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Random_seq 8 }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let r = Asc_core.Pipeline.run ~config prepared in
  Alcotest.(check bool) "covers detectable" true
    (Bitvec.count r.final_detected = Bitvec.count prepared.targets
    || Bitvec.count r.final_detected
       = Bitvec.count (Bitvec.inter prepared.comb_detected prepared.targets))

(* Wide gates (splice-appended fanins) evaluate correctly. *)
let test_wide_gate () =
  let b = Builder.create "wide" in
  let pis = Array.init 6 (fun i -> Builder.add_input b (Printf.sprintf "a%d" i)) in
  let g = Builder.add_gate b Gate.Xor "g" (Array.to_list pis) in
  Builder.add_output b g;
  let c = Builder.finalize b in
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let input = Rng.bool_array rng 6 in
    let expected = Array.fold_left (fun acc b -> acc <> b) false input in
    let v = Asc_sim.Naive.eval_comb c ~pis:input ~state:[||] in
    Alcotest.(check bool) "naive xor6" expected (Asc_sim.Naive.outputs_of c v).(0);
    let e = Asc_sim.Engine2.create c [] in
    Asc_sim.Engine2.eval e ~pi_words:(Array.map Word.splat input);
    Alcotest.(check int) "engine xor6" (Word.splat expected)
      (Asc_sim.Engine2.po_word e 0)
  done

(* inc3's group compaction (triggered by many commits) must not change
   results. *)
let test_inc3_compaction_consistent () =
  let c = Asc_circuits.Registry.get "s344" in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 5 in
  let n_pis = Circuit.n_inputs c in
  let segments =
    Array.init 20 (fun _ ->
        Array.init 6 (fun _ -> Rng.bool_array rng n_pis))
  in
  let inc = Asc_fault.Seq_fsim.inc3_create c faults in
  Array.iter (fun seg -> ignore (Asc_fault.Seq_fsim.inc3_commit inc seg)) segments;
  let all = Array.concat (Array.to_list segments) in
  let batch = Asc_fault.Seq_fsim.detect_no_scan c ~seq:all ~faults in
  Alcotest.(check bool) "compaction-safe" true
    (Bitvec.equal (Asc_fault.Seq_fsim.inc3_detected inc) batch)

(* Single-PI circuits (b02/b09 profiles) run end to end. *)
let test_single_pi_profile () =
  let c = Asc_circuits.Registry.get "b02" in
  Alcotest.(check int) "one PI" 1 (Circuit.n_inputs c);
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed 50 }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let r = Asc_core.Pipeline.run ~config prepared in
  Alcotest.(check bool) "some coverage" true (Bitvec.count r.final_detected > 0);
  Alcotest.(check bool) "phase 4 sane" true (r.cycles_final <= r.cycles_initial)

(* Truncated detection is monotone in the scan-out time only for the
   PO-detected part; the full detection sets of nested prefixes still obey
   po-detection monotonicity. *)
let prop_prefix_po_monotone =
  QCheck.Test.make ~name:"PO detections grow with the prefix" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let profile = Asc_circuits.Profile.make "edge" 4 3 5 40 ~t0_budget:10 in
      let c = Asc_circuits.Generator.generate ~seed profile in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 71) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 8 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      let prof = Asc_fault.Seq_fsim.profile c ~si ~seq ~faults ~subset in
      (* If a fault is PO-detected at time t, every longer prefix detects
         it too (profile_detected_at must reflect that). *)
      let ok = ref true in
      Array.iteri
        (fun k _ ->
          if prof.po_time.(k) < 8 then
            for u = prof.po_time.(k) to 7 do
              if not (Bitvec.get (Asc_fault.Seq_fsim.profile_detected_at prof ~u) k)
              then ok := false
            done)
        subset;
      !ok)

let suite =
  [
    ( "edge",
      [
        Alcotest.test_case "constants simulate" `Quick test_constants_simulate;
        Alcotest.test_case "constants podem" `Quick test_constants_podem;
        Alcotest.test_case "constants pipeline" `Quick test_constants_full_pipeline;
        Alcotest.test_case "wide xor" `Quick test_wide_gate;
        Alcotest.test_case "inc3 compaction" `Quick test_inc3_compaction_consistent;
        Alcotest.test_case "single-PI profile" `Quick test_single_pi_profile;
        qtest prop_prefix_po_monotone;
      ] );
  ]
