(* Small-surface unit tests: exact error behaviour, golden formats, and
   API corner cases not covered by the larger suites. *)

open Asc_util
module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder

(* Exact VCD golden for a one-gate circuit: locks the format. *)
let test_vcd_golden () =
  let b = Builder.create "g1" in
  let a = Builder.add_input b "a" in
  let g = Builder.add_gate b Gate.Not "y" [ a ] in
  Builder.add_output b g;
  let c = Builder.finalize b in
  let vcd = Asc_sim.Vcd.of_scan_test c ~si:[||] ~seq:[| [| false |]; [| true |] |] in
  let expected =
    "$version asc waveform dump $end\n\
     $timescale 1ns $end\n\
     $scope module g1 $end\n\
     $var wire 1 ! clock $end\n\
     $var wire 1 \" a $end\n\
     $var wire 1 % y $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #0\n1!\n0\"\n1%\n#1\n0!\n#2\n1!\n1\"\n0%\n#3\n0!\n#4\n"
  in
  Alcotest.(check string) "vcd golden" expected vcd

let test_gate_controlling_values () =
  let check kind expected =
    Alcotest.(check bool) (Gate.to_string kind) true
      (Gate.controlling_value kind = expected)
  in
  check Gate.And (Some false);
  check Gate.Nand (Some false);
  check Gate.Or (Some true);
  check Gate.Nor (Some true);
  check Gate.Xor None;
  check Gate.Not None;
  check Gate.Buf None

let test_rng_errors () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "weighted all zero"
    (Invalid_argument "Rng.weighted: non-positive total weight") (fun () ->
      ignore (Rng.weighted rng [| 0; 0 |]));
  Alcotest.check_raises "word too wide" (Invalid_argument "Rng.word: width out of range")
    (fun () -> ignore (Rng.word rng ~width:63))

let test_time_model_errors () =
  Alcotest.check_raises "empty stats"
    (Invalid_argument "Time_model.length_stats: empty test set") (fun () ->
      ignore (Asc_scan.Time_model.length_stats [||]));
  Alcotest.check_raises "zero chains"
    (Invalid_argument "Time_model.cycles_multi_chain") (fun () ->
      ignore (Asc_scan.Time_model.cycles_multi_chain ~n_sv:4 ~chains:0 [ 1 ]))

let test_bitvec_init_of_list_agree () =
  let n = 130 in
  let pred i = i mod 7 = 3 in
  let a = Bitvec.init n pred in
  let b = Bitvec.of_list n (List.filter pred (List.init n Fun.id)) in
  Alcotest.(check bool) "init = of_list" true (Bitvec.equal a b)

let test_bitmat_copy_independent () =
  let m = Bitmat.create 3 10 in
  Bitmat.set m 1 4;
  let m' = Bitmat.copy m in
  Bitmat.set m' 2 7;
  Alcotest.(check bool) "original untouched" false (Bitmat.get m 2 7);
  Alcotest.(check bool) "copy has both" true (Bitmat.get m' 1 4 && Bitmat.get m' 2 7)

let test_seq_tgen_tiny_budget () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let cfg = { Asc_atpg.Seq_tgen.default_config with budget = 3; seg_len = 8 } in
  let r = Asc_atpg.Seq_tgen.generate ~config:cfg c ~faults ~rng:(Rng.create 2) in
  Alcotest.(check bool) "respects tiny budget" true
    (Array.length r.seq >= 1 && Array.length r.seq <= 3)

let test_transfer_zero_pairs_is_plain_combine () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let rng = Rng.create 3 in
  let tests =
    Array.init 5 (fun _ ->
        Asc_scan.Scan_test.create ~si:(Rng.bool_array rng 3)
          ~seq:[| Rng.bool_array rng 4 |])
  in
  let targets = Asc_scan.Tset.coverage c tests ~faults in
  let plain = Asc_compact.Combine.run c tests ~faults ~targets in
  let cfg = { Asc_compact.Transfer.default_config with max_pairs = 0 } in
  let tr = Asc_compact.Transfer.run ~config:cfg c tests ~faults ~targets ~rng in
  Alcotest.(check int) "no transfers attempted" 0 tr.transfers;
  Alcotest.(check int) "same test count as plain" (Array.length plain.tests)
    (Array.length tr.tests)

let test_profile_defaults () =
  let p = Asc_circuits.Profile.make "x" 1 1 1 10 ~t0_budget:5 in
  Alcotest.(check (float 1e-9)) "default init_frac" 0.8 p.init_frac;
  Alcotest.(check bool) "default unscaled" false p.scaled

let test_fault_to_string () =
  let c = Asc_circuits.S27.circuit () in
  match Asc_netlist.Circuit.find_signal c "G10" with
  | None -> Alcotest.fail "G10 missing"
  | Some g ->
      Alcotest.(check string) "output fault" "G10/sa1"
        (Asc_fault.Fault.to_string c (Asc_fault.Fault.output g true));
      Alcotest.(check string) "pin fault" "G10.in1/sa0"
        (Asc_fault.Fault.to_string c (Asc_fault.Fault.input g 1 false))

let suite =
  [
    ( "small-units",
      [
        Alcotest.test_case "vcd golden" `Quick test_vcd_golden;
        Alcotest.test_case "controlling values" `Quick test_gate_controlling_values;
        Alcotest.test_case "rng errors" `Quick test_rng_errors;
        Alcotest.test_case "time model errors" `Quick test_time_model_errors;
        Alcotest.test_case "bitvec init/of_list" `Quick test_bitvec_init_of_list_agree;
        Alcotest.test_case "bitmat copy" `Quick test_bitmat_copy_independent;
        Alcotest.test_case "seq_tgen tiny budget" `Quick test_seq_tgen_tiny_budget;
        Alcotest.test_case "transfer zero pairs" `Quick
          test_transfer_zero_pairs_is_plain_combine;
        Alcotest.test_case "profile defaults" `Quick test_profile_defaults;
        Alcotest.test_case "fault to_string" `Quick test_fault_to_string;
      ] );
  ]
