(* Tests for Asc_netlist: gates, builder, circuit derivation, bench I/O. *)

open Asc_netlist

let qtest = QCheck_alcotest.to_alcotest

(* --- Gate ----------------------------------------------------------- *)

let test_gate_strings () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> Alcotest.(check bool) (Gate.to_string k) true (k = k')
      | None -> Alcotest.fail "round trip failed")
    [
      Gate.Input; Gate.Dff; Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or;
      Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Const0; Gate.Const1;
    ];
  Alcotest.(check bool) "BUFF accepted" true (Gate.of_string "buff" = Some Gate.Buf);
  Alcotest.(check bool) "unknown rejected" true (Gate.of_string "FOO" = None)

let test_gate_arity () =
  Alcotest.(check bool) "and arity 2 ok" true (Gate.arity_ok Gate.And 2);
  Alcotest.(check bool) "and arity 1 bad" false (Gate.arity_ok Gate.And 1);
  Alcotest.(check bool) "not arity 1 ok" true (Gate.arity_ok Gate.Not 1);
  Alcotest.(check bool) "not arity 2 bad" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "input arity 0" true (Gate.arity_ok Gate.Input 0);
  Alcotest.(check bool) "dff arity 1" true (Gate.arity_ok Gate.Dff 1)

(* --- Builder / Circuit ---------------------------------------------- *)

(* A tiny hand-built circuit: 2 PIs, 1 DFF, and-or logic. *)
let tiny () =
  let b = Builder.create "tiny" in
  let a = Builder.add_input b "a" in
  let c = Builder.add_input b "c" in
  let q = Builder.add_dff b "q" in
  let g1 = Builder.add_gate b Gate.And "g1" [ a; q ] in
  let g2 = Builder.add_gate b Gate.Or "g2" [ g1; c ] in
  Builder.set_dff_input b q g2;
  Builder.add_output b g2;
  Builder.finalize b

let test_builder_tiny () =
  let c = tiny () in
  Alcotest.(check int) "gates" 5 (Circuit.n_gates c);
  Alcotest.(check int) "inputs" 2 (Circuit.n_inputs c);
  Alcotest.(check int) "outputs" 1 (Circuit.n_outputs c);
  Alcotest.(check int) "dffs" 1 (Circuit.n_dffs c);
  Alcotest.(check int) "order covers comb gates" 2 (Array.length (Circuit.order c));
  (* Topological property: every fanin of an ordered gate appears earlier
     or is a source. *)
  let position = Array.make (Circuit.n_gates c) (-1) in
  Array.iteri (fun i g -> position.(g) <- i) (Circuit.order c);
  Array.iter
    (fun g ->
      Array.iter
        (fun f ->
          if not (Gate.is_source (Circuit.kind c f)) then
            Alcotest.(check bool) "topo order" true (position.(f) < position.(g)))
        (Circuit.fanins c g))
    (Circuit.order c)

let test_builder_errors () =
  let b = Builder.create "bad" in
  let a = Builder.add_input b "a" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Builder.declare: duplicate signal \"a\"") (fun () ->
      ignore (Builder.add_input b "a"));
  let q = Builder.add_dff b "q" in
  ignore q;
  ignore a;
  (* Unconnected DFF fails at finalize. *)
  Alcotest.(check bool) "finalize fails on unconnected" true
    (try
       ignore (Builder.finalize b);
       false
     with Circuit.Structural_error _ -> true)

let test_combinational_cycle_detected () =
  let b = Builder.create "cyc" in
  let a = Builder.add_input b "a" in
  let g1 = Builder.declare b Gate.And "g1" in
  let g2 = Builder.add_gate b Gate.Or "g2" [ g1; a ] in
  Builder.connect b g1 [ g2; a ];
  Builder.add_output b g2;
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore (Builder.finalize b);
       false
     with Circuit.Structural_error _ -> true)

let test_sequential_loop_allowed () =
  (* Feedback through a DFF is legal. *)
  let c = tiny () in
  Alcotest.(check int) "dff input resolves" 1
    (Circuit.dff_index c (Circuit.dffs c).(0) + 1)

let test_fanouts () =
  let c = tiny () in
  match Circuit.find_signal c "g1" with
  | None -> Alcotest.fail "g1 missing"
  | Some g1 ->
      let fo = Circuit.fanouts c g1 in
      Alcotest.(check int) "g1 fanout count" 1 (Array.length fo);
      (match Circuit.find_signal c "q" with
      | Some q -> Alcotest.(check int) "q fanout" 1 (Array.length (Circuit.fanouts c q))
      | None -> Alcotest.fail "q missing")

(* --- Bench I/O ------------------------------------------------------- *)

let test_s27_parse () =
  let c = Asc_circuits.S27.circuit () in
  Alcotest.(check int) "pis" 4 (Circuit.n_inputs c);
  Alcotest.(check int) "pos" 1 (Circuit.n_outputs c);
  Alcotest.(check int) "ffs" 3 (Circuit.n_dffs c);
  (* 4 inputs + 3 DFFs + 10 logic gates. *)
  Alcotest.(check int) "gates" 17 (Circuit.n_gates c);
  match Circuit.find_signal c "G17" with
  | Some g -> Alcotest.(check bool) "G17 is NOT" true (Circuit.kind c g = Gate.Not)
  | None -> Alcotest.fail "G17 missing"

let test_bench_roundtrip_s27 () =
  let c = Asc_circuits.S27.circuit () in
  let text = Bench_io.to_string c in
  let c' = Bench_io.parse_string ~name:"s27rt" text in
  Alcotest.(check int) "gates" (Circuit.n_gates c) (Circuit.n_gates c');
  Alcotest.(check int) "pis" (Circuit.n_inputs c) (Circuit.n_inputs c');
  Alcotest.(check int) "ffs" (Circuit.n_dffs c) (Circuit.n_dffs c');
  (* Same simulation behaviour on a handful of runs. *)
  let rng = Asc_util.Rng.create 3 in
  for _ = 1 to 10 do
    let init = Asc_util.Rng.bool_array rng 3 in
    let seq = Array.init 5 (fun _ -> Asc_util.Rng.bool_array rng 4) in
    let r1, f1 = Asc_sim.Naive.run c ~init ~seq in
    let r2, f2 = Asc_sim.Naive.run c' ~init ~seq in
    Alcotest.(check bool) "same outputs" true (r1 = r2);
    Alcotest.(check bool) "same final state" true (f1 = f2)
  done

let test_bench_parse_errors () =
  let bad input expected_line =
    match Bench_io.parse_string ~name:"bad" input with
    | exception Bench_io.Parse_error { line; _ } ->
        Alcotest.(check int) "error line" expected_line line
    | _ -> Alcotest.fail "expected parse error"
  in
  bad "INPUT(a)\nx = FOO(a)\n" 2;
  bad "x = AND(a, b)\n" 1 (* undefined signals *);
  bad "INPUT(a)\nOUTPUT(\n" 2;
  bad "INPUT(a)\nx = NOT(a, a)\n" 2 (* arity *)

let test_bench_comments_and_blanks () =
  let text = "# hello\n\nINPUT(a)\n  OUTPUT(x) # trailing\nx = NOT(a)\n" in
  let c = Bench_io.parse_string ~name:"c" text in
  Alcotest.(check int) "gates" 2 (Circuit.n_gates c)

(* Random circuits round-trip through the bench format with identical
   behaviour. *)
let prop_bench_roundtrip =
  QCheck.Test.make ~name:"bench round-trip preserves behaviour" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let profile =
        Asc_circuits.Profile.make "rt" 4 3 5 40 ~t0_budget:10
      in
      let c = Asc_circuits.Generator.generate ~seed profile in
      let text = Bench_io.to_string c in
      let c' = Bench_io.parse_string ~name:"rt" text in
      let rng = Asc_util.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 5 do
        let init = Asc_util.Rng.bool_array rng (Circuit.n_dffs c) in
        let seq =
          Array.init 6 (fun _ -> Asc_util.Rng.bool_array rng (Circuit.n_inputs c))
        in
        let r1 = Asc_sim.Naive.run c ~init ~seq in
        let r2 = Asc_sim.Naive.run c' ~init ~seq in
        if r1 <> r2 then ok := false
      done;
      !ok)

let suite =
  [
    ( "netlist",
      [
        Alcotest.test_case "gate strings" `Quick test_gate_strings;
        Alcotest.test_case "gate arity" `Quick test_gate_arity;
        Alcotest.test_case "builder tiny" `Quick test_builder_tiny;
        Alcotest.test_case "builder errors" `Quick test_builder_errors;
        Alcotest.test_case "comb cycle detected" `Quick test_combinational_cycle_detected;
        Alcotest.test_case "sequential loop ok" `Quick test_sequential_loop_allowed;
        Alcotest.test_case "fanouts" `Quick test_fanouts;
        Alcotest.test_case "s27 parse" `Quick test_s27_parse;
        Alcotest.test_case "s27 roundtrip" `Quick test_bench_roundtrip_s27;
        Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
        Alcotest.test_case "comments/blanks" `Quick test_bench_comments_and_blanks;
        qtest prop_bench_roundtrip;
      ] );
  ]
