(* Tests for Asc_util: words, bit vectors, bit matrices, RNG, tables,
   stats.  Property tests check the packed structures against naive
   bool-array models. *)

open Asc_util

let qtest = QCheck_alcotest.to_alcotest

(* --- Word ---------------------------------------------------------- *)

let test_word_basics () =
  Alcotest.(check int) "width" 62 Word.width;
  Alcotest.(check int) "mask popcount" 62 (Word.popcount Word.mask);
  Alcotest.(check int) "zero popcount" 0 (Word.popcount 0);
  Alcotest.(check int) "one popcount" 1 (Word.popcount 1);
  Alcotest.(check bool) "get set" true (Word.get (Word.set 0 13) 13);
  Alcotest.(check bool) "clear" false (Word.get (Word.clear Word.mask 13) 13);
  Alcotest.(check int) "splat true" Word.mask (Word.splat true);
  Alcotest.(check int) "splat false" 0 (Word.splat false);
  Alcotest.(check int) "lowest_set empty" (-1) (Word.lowest_set 0);
  Alcotest.(check int) "lowest_set" 3 (Word.lowest_set 0b11000)

let word_gen = QCheck.map (fun i -> abs i land Word.mask) QCheck.int

let prop_word_popcount =
  QCheck.Test.make ~name:"Word.popcount matches bit loop" ~count:500 word_gen (fun w ->
      let naive = ref 0 in
      for i = 0 to Word.width - 1 do
        if Word.get w i then incr naive
      done;
      Word.popcount w = !naive)

let prop_word_iter =
  QCheck.Test.make ~name:"Word.iter_set visits exactly the set bits" ~count:500 word_gen
    (fun w ->
      let seen = ref [] in
      Word.iter_set (fun i -> seen := i :: !seen) w;
      let rebuilt = List.fold_left (fun acc i -> Word.set acc i) 0 !seen in
      rebuilt = w && List.length !seen = Word.popcount w)

(* --- Bitvec -------------------------------------------------------- *)

let test_bitvec_basics () =
  let v = Bitvec.create 100 in
  Alcotest.(check int) "fresh count" 0 (Bitvec.count v);
  Bitvec.set v 0;
  Bitvec.set v 63;
  Bitvec.set v 99;
  Alcotest.(check int) "count" 3 (Bitvec.count v);
  Alcotest.(check bool) "get" true (Bitvec.get v 63);
  Alcotest.(check int) "first_set" 0 (Bitvec.first_set v);
  Bitvec.clear v 0;
  Alcotest.(check int) "first_set after clear" 63 (Bitvec.first_set v);
  Alcotest.(check (list int)) "to_list" [ 63; 99 ] (Bitvec.to_list v);
  let full = Bitvec.create ~default:true 100 in
  Alcotest.(check int) "default true count" 100 (Bitvec.count full);
  Bitvec.fill full false;
  Alcotest.(check bool) "fill false" true (Bitvec.is_empty full)

let test_bitvec_bounds () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 10));
  Alcotest.check_raises "set negative" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> Bitvec.set v (-1))

(* Regression: [create ~default:true] (and [fill true]) on lengths that
   are exact word multiples must not shift by a full word width. *)
let test_bitvec_default_word_boundary () =
  List.iter
    (fun len ->
      let v = Bitvec.create ~default:true len in
      Alcotest.(check int) (Printf.sprintf "count len=%d" len) len (Bitvec.count v);
      if len > 0 then begin
        Alcotest.(check bool) "first bit" true (Bitvec.get v 0);
        Alcotest.(check bool) "last bit" true (Bitvec.get v (len - 1))
      end;
      let w = Bitvec.create len in
      Bitvec.fill w true;
      Alcotest.(check bool) (Printf.sprintf "fill = default len=%d" len) true
        (Bitvec.equal v w))
    [ 0; 1; 61; 62; 63; 124; 186; 200 ]

(* Model-based property: random operation sequences agree with a bool
   array model. *)
let bitvec_pair_gen =
  QCheck.make
    ~print:(fun (n, xs, ys) ->
      Printf.sprintf "n=%d xs=[%s] ys=[%s]" n
        (String.concat ";" (List.map string_of_int xs))
        (String.concat ";" (List.map string_of_int ys)))
    QCheck.Gen.(
      int_range 1 300 >>= fun n ->
      list_size (int_bound 60) (int_bound (n - 1)) >>= fun xs ->
      list_size (int_bound 60) (int_bound (n - 1)) >>= fun ys -> return (n, xs, ys))

let model_of n xs =
  let a = Array.make n false in
  List.iter (fun i -> a.(i) <- true) xs;
  a

let prop_bitvec_set_ops =
  QCheck.Test.make ~name:"Bitvec union/inter/diff vs bool arrays" ~count:300
    bitvec_pair_gen (fun (n, xs, ys) ->
      let a = Bitvec.of_list n xs and b = Bitvec.of_list n ys in
      let ma = model_of n xs and mb = model_of n ys in
      let check op mop =
        let v = op a b in
        let m = Array.init n (fun i -> mop ma.(i) mb.(i)) in
        Array.for_all Fun.id (Array.init n (fun i -> Bitvec.get v i = m.(i)))
      in
      check Bitvec.union ( || )
      && check Bitvec.inter ( && )
      && check Bitvec.diff (fun x y -> x && not y))

let prop_bitvec_subset =
  QCheck.Test.make ~name:"Bitvec.subset agrees with pointwise implication" ~count:300
    bitvec_pair_gen (fun (n, xs, ys) ->
      let a = Bitvec.of_list n xs and b = Bitvec.of_list n ys in
      let ma = model_of n xs and mb = model_of n ys in
      let expected =
        Array.for_all Fun.id (Array.init n (fun i -> (not ma.(i)) || mb.(i)))
      in
      Bitvec.subset a b = expected)

let prop_bitvec_count =
  QCheck.Test.make ~name:"Bitvec.count = |set bits|" ~count:300 bitvec_pair_gen
    (fun (n, xs, _) ->
      let a = Bitvec.of_list n xs in
      let distinct = List.sort_uniq compare xs in
      Bitvec.count a = List.length distinct
      && Bitvec.to_list a = distinct)

(* --- Bitmat -------------------------------------------------------- *)

let test_bitmat () =
  let m = Bitmat.create 4 10 in
  Bitmat.set m 0 3;
  Bitmat.set m 2 3;
  Bitmat.set m 3 7;
  Alcotest.(check int) "column_count" 2 (Bitmat.column_count m 3);
  Alcotest.(check int) "last_row_with" 2 (Bitmat.last_row_with m 3);
  Alcotest.(check int) "last_row_with none" (-1) (Bitmat.last_row_with m 5);
  let u = Bitmat.column_union m in
  Alcotest.(check (list int)) "column_union" [ 3; 7 ] (Bitvec.to_list u);
  let counts = Bitmat.column_counts m in
  Alcotest.(check int) "column_counts[3]" 2 counts.(3);
  Alcotest.(check int) "column_counts[7]" 1 counts.(7);
  Alcotest.(check int) "column_counts[0]" 0 counts.(0)

(* --- Rng ----------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.of_name ~seed:42 "circuit" in
  let b = Rng.of_name ~seed:42 "circuit" in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Rng.of_name ~seed:43 "circuit" in
  let zs = List.init 20 (fun _ -> Rng.bits c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs);
  let d = Rng.of_name ~seed:42 "other" in
  let ws = List.init 20 (fun _ -> Rng.bits d) in
  Alcotest.(check bool) "different name differs" true (xs <> ws)

let test_rng_copy_split () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  Alcotest.(check int) "copy same future" (Rng.bits a) (Rng.bits b);
  let c = Rng.split a in
  Alcotest.(check bool) "split independent" true (Rng.bits a <> Rng.bits c)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.int rng bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prop_rng_word_width =
  QCheck.Test.make ~name:"Rng.word respects width" ~count:200
    QCheck.(pair small_int (int_range 0 62))
    (fun (seed, width) ->
      let rng = Rng.create seed in
      let w = Rng.word rng ~width in
      w >= 0 && (width = 62 || w < 1 lsl width))

let test_rng_weighted () =
  let rng = Rng.create 5 in
  (* Zero-weight entries are never picked. *)
  for _ = 1 to 200 do
    let i = Rng.weighted rng [| 0; 3; 0; 5 |] in
    Alcotest.(check bool) "only positive weights" true (i = 1 || i = 3)
  done

(* --- Stats and Table ----------------------------------------------- *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1; 2; 3 ]);
  Alcotest.(check string) "range" "1-3" (Stats.range_string [ 2; 1; 3 ]);
  Alcotest.(check string) "mean_string" "1.20" (Stats.mean_string [ 1; 1; 1; 2; 1 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5 (Stats.median [ 1; 2; 1; 2 ]);
  Alcotest.(check int) "sum" 6 (Stats.sum [ 1; 2; 3 ]);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent ~num:1 ~den:2);
  Alcotest.(check (float 1e-9)) "percent zero den" 0.0 (Stats.percent ~num:1 ~den:0)

let test_stats_float () =
  Alcotest.(check (float 1e-9)) "sum_f" 6.0 (Stats.sum_f [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean_f" 2.0 (Stats.mean_f [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean_f empty" 0.0 (Stats.mean_f []);
  let lo, hi = Stats.min_max_f [ 2.5; 0.5; 1.0 ] in
  Alcotest.(check (float 1e-9)) "min_max_f lo" 0.5 lo;
  Alcotest.(check (float 1e-9)) "min_max_f hi" 2.5 hi;
  Alcotest.(check (float 1e-9)) "median_f odd" 1.0 (Stats.median_f [ 2.5; 0.5; 1.0 ]);
  Alcotest.(check (float 1e-9)) "median_f even" 1.5 (Stats.median_f [ 2.0; 1.0 ])

let test_stats_stddev () =
  (* Population stddev of {2,4,4,4,5,5,7,9} is exactly 2. *)
  Alcotest.(check (float 1e-9)) "stddev"
    2.0
    (Stats.stddev [ 2; 4; 4; 4; 5; 5; 7; 9 ]);
  Alcotest.(check (float 1e-9)) "stddev_f constant" 0.0
    (Stats.stddev_f [ 3.0; 3.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev_f singleton" 0.0 (Stats.stddev_f [ 42.0 ]);
  Alcotest.(check (float 1e-9)) "stddev_f empty" 0.0 (Stats.stddev_f [])

let test_stats_percentile () =
  let l = [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile_f ~p:0.0 l);
  Alcotest.(check (float 1e-9)) "p100 = max" 4.0 (Stats.percentile_f ~p:100.0 l);
  Alcotest.(check (float 1e-9)) "p50 = median" (Stats.median_f l)
    (Stats.percentile_f ~p:50.0 l);
  (* Linear interpolation between closest ranks: rank 0.75 of [1;2;3;4]. *)
  Alcotest.(check (float 1e-9)) "p25 interpolates" 1.75
    (Stats.percentile_f ~p:25.0 l);
  Alcotest.(check (float 1e-9)) "int variant" 1.75 (Stats.percentile ~p:25.0 [ 4; 1; 3; 2 ]);
  Alcotest.check_raises "empty list" (Invalid_argument "Stats.percentile_f: empty list")
    (fun () -> ignore (Stats.percentile_f ~p:50.0 []));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile_f: p must be in [0, 100] (got 101)")
    (fun () -> ignore (Stats.percentile_f ~p:101.0 [ 1.0 ]))

let test_table () =
  let t =
    Table.create ~caption:"Demo"
      ~groups:[ ("", 1); ("pair", 2) ]
      [ Table.left "name"; Table.right "a"; Table.right "b" ]
  in
  Table.add_row t [ "x"; "1"; "22" ];
  Table.add_row t [ "yyyy"; "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains caption" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "several lines" true (List.length lines >= 6);
  Alcotest.check_raises "row arity enforced"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "too"; "few" ])

let test_table_group_mismatch () =
  Alcotest.check_raises "group span mismatch"
    (Invalid_argument "Table.create: group span mismatch") (fun () ->
      ignore (Table.create ~caption:"x" ~groups:[ ("a", 2) ] [ Table.left "one" ]))

let suite =
  [
    ( "util",
      [
        Alcotest.test_case "word basics" `Quick test_word_basics;
        qtest prop_word_popcount;
        qtest prop_word_iter;
        Alcotest.test_case "bitvec basics" `Quick test_bitvec_basics;
        Alcotest.test_case "bitvec bounds" `Quick test_bitvec_bounds;
        Alcotest.test_case "bitvec default at word boundaries" `Quick
          test_bitvec_default_word_boundary;
        qtest prop_bitvec_set_ops;
        qtest prop_bitvec_subset;
        qtest prop_bitvec_count;
        Alcotest.test_case "bitmat" `Quick test_bitmat;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng copy/split" `Quick test_rng_copy_split;
        qtest prop_rng_int_range;
        qtest prop_rng_word_width;
        Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "stats float variants" `Quick test_stats_float;
        Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
        Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
        Alcotest.test_case "table" `Quick test_table;
        Alcotest.test_case "table group mismatch" `Quick test_table_group_mismatch;
      ] );
  ]
