(* Kernel-equivalence suite: the levelized event-driven kernel
   (--sim-kernel=levelized, the default) must be bit-identical to the
   interpretive reference sweep (--sim-kernel=reference) — same detection
   vectors, same profiles, same candidate matrices — on every registry
   circuit and at every domain count.  This is the contract that lets the
   reference path serve as a bisection escape hatch. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Collapse = Asc_fault.Collapse
module Seq_fsim = Asc_fault.Seq_fsim
module SK = Asc_sim.Sim_kernel

let qtest = QCheck_alcotest.to_alcotest

let with_kernel k f =
  let saved = SK.current () in
  SK.set k;
  Fun.protect ~finally:(fun () -> SK.set saved) f

let with_pool domains f =
  if domains <= 1 then f None
  else
    let pool = Domain_pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Domain_pool.shutdown pool)
      (fun () -> f (Some pool))

(* Deterministic per-circuit test stimulus. *)
let stimulus c name ~len =
  let rng = Rng.of_name ~seed:0 (name ^ "/kernel-equiv") in
  let si = Rng.bool_array rng (Circuit.n_dffs c) in
  let seq = Array.init len (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
  (si, seq)

(* Every registry circuit: the levelized detection vector at 1, 2 and 4
   domains equals the reference one. *)
let test_registry_detect_equivalence () =
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get name in
      let faults = Collapse.reps (Collapse.run c) in
      let si, seq = stimulus c name ~len:6 in
      let reference =
        with_kernel SK.Reference (fun () -> Seq_fsim.detect c ~si ~seq ~faults)
      in
      List.iter
        (fun domains ->
          with_pool domains (fun pool ->
              let det =
                with_kernel SK.Levelized (fun () ->
                    Seq_fsim.clear_trace_cache ();
                    Seq_fsim.detect ?pool c ~si ~seq ~faults)
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: levelized = reference at %d domains" name
                   domains)
                true
                (Bitvec.equal reference det)))
        [ 1; 2; 4 ])
    Asc_circuits.Registry.names

(* The richer entry points — profile, candidate_detections,
   verify_required — on a representative circuit, across domain counts. *)
let test_rich_ops_equivalence () =
  let name = "s298" in
  let c = Asc_circuits.Registry.get name in
  let faults = Collapse.reps (Collapse.run c) in
  let si, seq = stimulus c name ~len:8 in
  let subset = Array.init (Array.length faults) Fun.id in
  let rng = Rng.of_name ~seed:1 (name ^ "/kernel-equiv-sis") in
  let sis =
    Array.init 5 (fun _ -> Rng.bool_array rng (Circuit.n_dffs c))
  in
  let run kernel pool =
    with_kernel kernel (fun () ->
        Seq_fsim.clear_trace_cache ();
        let prof = Seq_fsim.profile ?pool c ~si ~seq ~faults ~subset in
        let cand =
          Seq_fsim.candidate_detections ?pool c ~sis ~seq ~faults ~subset
        in
        let required = Seq_fsim.verify_required ?pool c ~si ~seq ~faults ~subset in
        (prof, cand, required))
  in
  let ref_prof, ref_cand, ref_req = run SK.Reference None in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let prof, cand, required = run SK.Levelized pool in
          let label fmt = Printf.sprintf fmt domains in
          Alcotest.(check (array int))
            (label "profile po_time at %d domains")
            ref_prof.Seq_fsim.po_time prof.Seq_fsim.po_time;
          Alcotest.(check bool)
            (label "profile state_diff_at at %d domains")
            true
            (Array.for_all2 Bitvec.equal ref_prof.Seq_fsim.state_diff_at
               prof.Seq_fsim.state_diff_at);
          Alcotest.(check bool)
            (label "candidate matrix at %d domains")
            true
            (Array.for_all2
               (fun r -> Bitvec.equal (Bitmat.row ref_cand r))
               (Array.init (Array.length sis) Fun.id)
               (Array.init (Array.length sis) (Bitmat.row cand)));
          Alcotest.(check bool)
            (label "verify_required at %d domains")
            ref_req required))
    [ 1; 2; 4 ]

(* --- Property: cone-limited evaluation = full re-simulation ----------- *)

let small_circuit seed =
  Asc_circuits.Profile.make "kq" 4 3 5 45 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

(* The levelized kernel only evaluates the fanout cone of the fault sites
   and diverged flip-flops, with early exit on reconvergence and
   detected-lane pruning; the reference sweep re-simulates every gate of
   every cycle.  On random circuits and random fault subsets both must
   agree on detection and on the full detection-time profile (the profile
   runs unpruned, so it pins the cone walk everywhere, not just until
   first detection). *)
let prop_cone_matches_full_resim =
  QCheck.Test.make
    ~name:"cone-limited fault evaluation matches full re-simulation" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let all = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 23) in
      (* A random subset of the collapsed faults, so fault-site seeds sit
         at arbitrary places in the schedule. *)
      let faults =
        Array.of_list
          (List.filter (fun _ -> Rng.bool rng) (Array.to_list all))
      in
      let faults = if Array.length faults = 0 then all else faults in
      let subset = Array.init (Array.length faults) Fun.id in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 7 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let run kernel =
        with_kernel kernel (fun () ->
            Seq_fsim.clear_trace_cache ();
            let det = Seq_fsim.detect c ~si ~seq ~faults in
            let prof = Seq_fsim.profile c ~si ~seq ~faults ~subset in
            (det, prof))
      in
      let ref_det, ref_prof = run SK.Reference in
      let lv_det, lv_prof = run SK.Levelized in
      Bitvec.equal ref_det lv_det
      && ref_prof.Seq_fsim.po_time = lv_prof.Seq_fsim.po_time
      && Array.for_all2 Bitvec.equal ref_prof.Seq_fsim.state_diff_at
           lv_prof.Seq_fsim.state_diff_at)

(* Combinational path: the per-pattern detect matrix is kernel-independent. *)
let prop_comb_matrix_kernel_independent =
  QCheck.Test.make ~name:"Comb_fsim matrix is kernel-independent" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 29) in
      let patterns =
        Array.init 40 (fun _ ->
            Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c)
              ~n_ffs:(Circuit.n_dffs c))
      in
      let run kernel =
        with_kernel kernel (fun () ->
            Asc_fault.Comb_fsim.detect_matrix c ~patterns ~faults)
      in
      let ref_mat = run SK.Reference in
      let lv_mat = run SK.Levelized in
      let ok = ref true in
      for p = 0 to Array.length patterns - 1 do
        if not (Bitvec.equal (Bitmat.row ref_mat p) (Bitmat.row lv_mat p)) then
          ok := false
      done;
      !ok)

let suite =
  [
    ( "kernel",
      [
        Alcotest.test_case
          "registry detect: levelized = reference at 1/2/4 domains" `Slow
          test_registry_detect_equivalence;
        Alcotest.test_case "profile/candidates/verify: levelized = reference"
          `Quick test_rich_ops_equivalence;
        qtest prop_cone_matches_full_resim;
        qtest prop_comb_matrix_kernel_independent;
      ] );
  ]
