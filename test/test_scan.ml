(* Tests for Asc_scan: scan-test operations, the clock-cycle model, the
   detection matrix's fast path. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Time_model = Asc_scan.Time_model
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

let small_circuit seed =
  Asc_circuits.Profile.make "scan" 4 3 5 40 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

let test_time_model () =
  (* The paper's formula: (k+1) * N_SV + sum L(T_j). *)
  Alcotest.(check int) "empty" 0 (Time_model.cycles ~n_sv:10 []);
  Alcotest.(check int) "one test" ((2 * 10) + 5) (Time_model.cycles ~n_sv:10 [ 5 ]);
  Alcotest.(check int) "three tests"
    ((4 * 7) + 1 + 2 + 3)
    (Time_model.cycles ~n_sv:7 [ 1; 2; 3 ]);
  (* The paper's Section 2 example: N tests of length one cost
     (N+1) * N_SV + N; a single combined test costs 2 * N_SV + N. *)
  let n = 50 and n_sv = 20 in
  let split = Time_model.cycles ~n_sv (List.init n (fun _ -> 1)) in
  let merged = Time_model.cycles ~n_sv [ n ] in
  Alcotest.(check int) "split" (((n + 1) * n_sv) + n) split;
  Alcotest.(check int) "merged" ((2 * n_sv) + n) merged;
  Alcotest.(check bool) "combining always wins" true (merged < split)

let test_length_stats () =
  let t len =
    Scan_test.create ~si:[| true |] ~seq:(Array.make len [| false |])
  in
  let stats = Time_model.length_stats [| t 1; t 3; t 8 |] in
  Alcotest.(check (float 1e-9)) "average" 4.0 stats.average;
  Alcotest.(check int) "lo" 1 stats.lo;
  Alcotest.(check int) "hi" 8 stats.hi

let test_scan_test_ops () =
  let si = [| true; false |] in
  let seq = Array.init 5 (fun i -> [| i mod 2 = 0 |]) in
  let t = Scan_test.create ~si ~seq in
  Alcotest.(check int) "length" 5 (Scan_test.length t);
  let trunc = Scan_test.truncate t ~u:2 in
  Alcotest.(check int) "truncate" 3 (Scan_test.length trunc);
  let omitted = Scan_test.omit t ~p:1 in
  Alcotest.(check int) "omit length" 4 (Scan_test.length omitted);
  Alcotest.(check bool) "omit shifts" true (omitted.seq.(1) = seq.(2));
  let span = Scan_test.omit_span t ~p:1 ~count:3 in
  Alcotest.(check int) "omit_span length" 2 (Scan_test.length span);
  Alcotest.(check bool) "span keeps ends" true
    (span.seq.(0) = seq.(0) && span.seq.(1) = seq.(4));
  let a = Scan_test.create ~si ~seq:(Array.sub seq 0 2) in
  let b = Scan_test.create ~si:[| false; true |] ~seq:(Array.sub seq 2 3) in
  let ab = Scan_test.combine a b in
  Alcotest.(check int) "combine length" 5 (Scan_test.length ab);
  Alcotest.(check bool) "combine keeps SI_i" true (ab.si = a.si);
  Alcotest.check_raises "empty test rejected"
    (Invalid_argument "Scan_test.create: empty sequence") (fun () ->
      ignore (Scan_test.create ~si ~seq:[||]))

(* Length-one scan tests and combinational patterns agree (the fast path
   of the detection matrix equals the sequential path). *)
let prop_length_one_equals_comb =
  QCheck.Test.make ~name:"length-1 scan detection = combinational detection" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 21) in
      let tests =
        Array.init 8 (fun _ ->
            let p =
              Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c)
                ~n_ffs:(Circuit.n_dffs c)
            in
            Scan_test.of_pattern p)
      in
      let mat = Asc_scan.Tset.detection_matrix c tests ~faults in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          let seq_det = Asc_fault.Seq_fsim.detect c ~si:t.Scan_test.si ~seq:t.seq ~faults in
          if not (Bitvec.equal (Asc_util.Bitmat.row mat i) seq_det) then ok := false)
        tests;
      !ok)

(* The scan-out vector is the fault-free final state. *)
let prop_scan_out_is_good_final =
  QCheck.Test.make ~name:"scan_out equals naive final state" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let rng = Rng.create (seed + 22) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq = Array.init 6 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let t = Scan_test.create ~si ~seq in
      let _, final = Asc_sim.Naive.run c ~init:si ~seq in
      Scan_test.scan_out c t = final)

(* Mixed-length detection matrix agrees with per-test detection. *)
let prop_detection_matrix_mixed =
  QCheck.Test.make ~name:"detection matrix handles mixed lengths" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 23) in
      let mk len =
        Scan_test.create
          ~si:(Rng.bool_array rng (Circuit.n_dffs c))
          ~seq:(Array.init len (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)))
      in
      let tests = [| mk 1; mk 4; mk 1; mk 2 |] in
      let mat = Asc_scan.Tset.detection_matrix c tests ~faults in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          let det = Scan_test.detect c t ~faults in
          if not (Bitvec.equal (Asc_util.Bitmat.row mat i) det) then ok := false)
        tests;
      !ok)

let suite =
  [
    ( "scan",
      [
        Alcotest.test_case "time model" `Quick test_time_model;
        Alcotest.test_case "length stats" `Quick test_length_stats;
        Alcotest.test_case "scan test ops" `Quick test_scan_test_ops;
        qtest prop_length_one_equals_comb;
        qtest prop_scan_out_is_good_final;
        qtest prop_detection_matrix_mixed;
      ] );
  ]
