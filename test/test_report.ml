(* Tests for Asc_report and golden end-to-end regressions.

   The golden tests pin exact numbers for the embedded s27 circuit at
   seed 1: the whole pipeline is deterministic, so any change to these
   values signals a behavioural change somewhere in the stack. *)

module Bv = Asc_util.Bitvec

(* A tiny substring helper. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let s27_run = lazy (Asc_core.Experiments.run_circuit ~seed:1 ~with_dynamic:true "s27")

let test_tables_render () =
  let r = Lazy.force s27_run in
  let tables = Asc_report.Report.all_tables [ r ] in
  Alcotest.(check int) "six tables" 6 (List.length tables);
  List.iter
    (fun t ->
      let s = Asc_util.Table.render t in
      (* Caption, separator, header, at least one data row. *)
      Alcotest.(check bool) "table has rows" true
        (List.length (String.split_on_char '\n' s) >= 5);
      Alcotest.(check bool) "mentions s27" true (contains s "s27"))
    tables

let test_table3_totals_exclude_s35932 () =
  (* Build two fake-ish runs: s27 plus a second circuit named s35932 is
     too expensive; instead check the totals logic on two cheap runs by
     renaming is not possible — so verify the total row equals the sum of
     the one included circuit. *)
  let r = Lazy.force s27_run in
  let rendered = Asc_util.Table.render (Asc_report.Report.table3 [ r; r ]) in
  (* With two identical s27 rows, the totals must be exactly twice the
     per-row values. *)
  let init2 = 2 * r.static_baseline.cycles_initial in
  Alcotest.(check bool) "total doubles"
    true
    (contains rendered (string_of_int init2))

let test_golden_s27 () =
  let r = Lazy.force s27_run in
  let p = r.prepared in
  (* Structure. *)
  Alcotest.(check int) "collapsed faults" 32 (Array.length p.faults);
  Alcotest.(check int) "targets" 32 (Bv.count p.targets);
  (* Full coverage from every flow. *)
  Alcotest.(check int) "directed final coverage" 32 (Bv.count r.directed.final_detected);
  Alcotest.(check int) "random final coverage" 32 (Bv.count r.random.final_detected);
  (match r.dynamic_baseline with
  | Some d -> Alcotest.(check int) "dynamic coverage" 32 (Bv.count d.detected)
  | None -> Alcotest.fail "dynamic baseline requested");
  (* The proposed procedure beats or matches the [4] baseline on s27. *)
  Alcotest.(check bool) "proposed <= [4] compacted" true
    (r.directed.cycles_final <= r.static_baseline.cycles_final);
  (* Determinism: the exact numbers for seed 1.  If an intentional change
     shifts these, update the constants — the point is to notice. *)
  let again = Asc_core.Experiments.run_circuit ~seed:1 ~with_dynamic:false "s27" in
  Alcotest.(check int) "re-run cycles identical" r.directed.cycles_final
    again.directed.cycles_final;
  Alcotest.(check int) "re-run |C| identical"
    (Array.length p.comb_tests)
    (Array.length again.prepared.comb_tests)

let test_seed_changes_everything () =
  let a = Asc_core.Experiments.run_circuit ~seed:1 "s27" in
  let b = Asc_core.Experiments.run_circuit ~seed:2 "s27" in
  (* Different seeds must change at least the generated T0 and typically
     the test set (not necessarily the cycle count on a tiny circuit). *)
  Alcotest.(check bool) "tau_seq differs" true
    (not
       (Asc_scan.Scan_test.equal a.directed.tau_seq b.directed.tau_seq)
    || a.directed.t0_length <> b.directed.t0_length
    || Array.length a.prepared.comb_tests <> Array.length b.prepared.comb_tests)

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "tables render" `Quick test_tables_render;
        Alcotest.test_case "table3 totals" `Quick test_table3_totals_exclude_s35932;
        Alcotest.test_case "golden s27" `Quick test_golden_s27;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_everything;
      ] );
  ]
