(* Tests for the [11]-style sequence restoration compaction. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

let prop_restore_preserves_no_scan_coverage =
  QCheck.Test.make ~name:"sequence restoration preserves no-scan coverage" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c =
        Asc_circuits.Profile.make "sr" 4 3 5 45 ~t0_budget:10
        |> Asc_circuits.Generator.generate ~seed
      in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 95) in
      let seq =
        Asc_atpg.Random_tgen.generate rng ~n_pis:(Circuit.n_inputs c) ~len:30
      in
      let before = Asc_fault.Seq_fsim.detect_no_scan c ~seq ~faults in
      let r = Asc_compact.Seq_restore.run c ~seq ~faults in
      Bitvec.subset before r.detected
      && Array.length r.seq = 30 - r.omitted
      && Array.length r.seq >= 1
      (* The reported coverage is the compacted sequence's real coverage. *)
      && Bitvec.equal r.detected
           (Asc_fault.Seq_fsim.detect_no_scan c ~seq:r.seq ~faults))

let test_restore_strips_padding () =
  (* A sequence whose tail detects nothing new gets trimmed. *)
  let c = Asc_circuits.Registry.get "s298" in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 6 in
  let core = Asc_atpg.Random_tgen.generate rng ~n_pis:3 ~len:20 in
  (* Pad with a constant vector repeated: after the first repetition the
     state trajectory fixes, so most of the padding is removable. *)
  let pad = Array.make 20 (Array.make 3 false) in
  let seq = Array.append core pad in
  let r = Asc_compact.Seq_restore.run c ~seq ~faults in
  Alcotest.(check bool) "some omission" true (r.omitted > 0);
  let before = Asc_fault.Seq_fsim.detect_no_scan c ~seq ~faults in
  Alcotest.(check bool) "coverage preserved" true (Bitvec.subset before r.detected)

let test_restore_empty_and_tiny () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let r = Asc_compact.Seq_restore.run c ~seq:[||] ~faults in
  Alcotest.(check int) "empty stays empty" 0 (Array.length r.seq);
  let one = [| [| true; false; true; false |] |] in
  let r1 = Asc_compact.Seq_restore.run c ~seq:one ~faults in
  Alcotest.(check bool) "singleton survives" true (Array.length r1.seq >= 1)

let suite =
  [
    ( "seq-restore",
      [
        qtest prop_restore_preserves_no_scan_coverage;
        Alcotest.test_case "strips padding" `Quick test_restore_strips_padding;
        Alcotest.test_case "empty and tiny" `Quick test_restore_empty_and_tiny;
      ] );
  ]
