(* Tests for the toolchain conveniences: the VCD writer and the test-set
   audit. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- VCD ------------------------------------------------------------- *)

let test_vcd_structure () =
  let c = Asc_circuits.S27.circuit () in
  let rng = Rng.create 3 in
  let si = Rng.bool_array rng 3 in
  let seq = Array.init 4 (fun _ -> Rng.bool_array rng 4) in
  let vcd = Asc_sim.Vcd.of_scan_test c ~si ~seq in
  Alcotest.(check bool) "has header" true (contains vcd "$enddefinitions");
  Alcotest.(check bool) "declares the clock" true (contains vcd "clock");
  Alcotest.(check bool) "declares G17" true (contains vcd "G17");
  (* 4 cycles: time stamps 0..8. *)
  Alcotest.(check bool) "final time stamp" true (contains vcd "#8");
  (* Every gate changes at most once per cycle: the dump's change count is
     bounded by gates x cycles + clock edges. *)
  let changes =
    List.length
      (List.filter
         (fun l -> String.length l >= 2 && (l.[0] = '0' || l.[0] = '1'))
         (String.split_on_char '\n' vcd))
  in
  Alcotest.(check bool) "bounded changes" true
    (changes <= (Circuit.n_gates c * 4) + (2 * 4) + 8)

let test_vcd_first_cycle_values () =
  (* At time 0 every signal's value must be dumped (nothing is implicit). *)
  let c = Asc_circuits.S27.circuit () in
  let si = [| false; false; false |] in
  let seq = [| [| true; false; true; false |] |] in
  let vcd = Asc_sim.Vcd.of_scan_test c ~si ~seq in
  (* The dump between "#0" and "#1" must mention every gate code; count
     value-change lines there. *)
  let after0 =
    match String.index_opt vcd '#' with
    | Some _ ->
        let parts = String.split_on_char '#' vcd in
        List.nth parts 1 (* "0\n...changes..." *)
    | None -> ""
  in
  let lines = String.split_on_char '\n' after0 in
  let change_lines =
    List.filter (fun l -> String.length l >= 2 && (l.[0] = '0' || l.[0] = '1')) lines
  in
  (* clock + all 17 gates. *)
  Alcotest.(check int) "all signals dumped at t0" (1 + Circuit.n_gates c)
    (List.length change_lines)

(* --- Audit ------------------------------------------------------------ *)

let test_audit_duplicates_and_useless () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let targets = Bitvec.create ~default:true (Array.length faults) in
  let rng = Rng.create 7 in
  let t1 =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 6 (fun _ -> Rng.bool_array rng 4))
  in
  (* t2 duplicates t1; t3 is fresh. *)
  let t2 = Scan_test.create ~si:(Array.copy t1.si) ~seq:(Array.map Array.copy t1.seq) in
  let t3 =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 2 (fun _ -> Rng.bool_array rng 4))
  in
  let report = Asc_scan.Audit.run c [| t1; t2; t3 |] ~faults ~targets in
  Alcotest.(check (list (pair int int))) "duplicate found" [ (0, 1) ] report.duplicates;
  Alcotest.(check bool) "duplicate is useless" true (List.mem 1 report.useless);
  Alcotest.(check int) "incremental of duplicate" 0 report.incremental.(1);
  Alcotest.(check int) "coverage consistent" report.coverage
    (Array.fold_left ( + ) 0 report.incremental);
  Alcotest.(check int) "cycles match model"
    (Asc_scan.Time_model.cycles ~n_sv:3 [ 6; 6; 2 ])
    report.cycles;
  (* Scan-outs are the fault-free finals. *)
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) "scan-out matches" true
        (report.scan_outs.(i) = Scan_test.scan_out c t))
    [| t1; t2; t3 |]

let suite =
  [
    ( "tools",
      [
        Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
        Alcotest.test_case "vcd first cycle" `Quick test_vcd_first_cycle_values;
        Alcotest.test_case "audit" `Quick test_audit_duplicates_and_useless;
      ] );
  ]
