(* Tests for the toolchain conveniences: the VCD writer, the test-set
   audit, and the CLI's input-failure contract — every file-opening flag
   must exit 1 with a one-line `asc:` message, never a backtrace; a
   malformed ASC_CHAOS schedule is a usage error (2); an unwritable
   --checkpoint degrades (0). *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- VCD ------------------------------------------------------------- *)

let test_vcd_structure () =
  let c = Asc_circuits.S27.circuit () in
  let rng = Rng.create 3 in
  let si = Rng.bool_array rng 3 in
  let seq = Array.init 4 (fun _ -> Rng.bool_array rng 4) in
  let vcd = Asc_sim.Vcd.of_scan_test c ~si ~seq in
  Alcotest.(check bool) "has header" true (contains vcd "$enddefinitions");
  Alcotest.(check bool) "declares the clock" true (contains vcd "clock");
  Alcotest.(check bool) "declares G17" true (contains vcd "G17");
  (* 4 cycles: time stamps 0..8. *)
  Alcotest.(check bool) "final time stamp" true (contains vcd "#8");
  (* Every gate changes at most once per cycle: the dump's change count is
     bounded by gates x cycles + clock edges. *)
  let changes =
    List.length
      (List.filter
         (fun l -> String.length l >= 2 && (l.[0] = '0' || l.[0] = '1'))
         (String.split_on_char '\n' vcd))
  in
  Alcotest.(check bool) "bounded changes" true
    (changes <= (Circuit.n_gates c * 4) + (2 * 4) + 8)

let test_vcd_first_cycle_values () =
  (* At time 0 every signal's value must be dumped (nothing is implicit). *)
  let c = Asc_circuits.S27.circuit () in
  let si = [| false; false; false |] in
  let seq = [| [| true; false; true; false |] |] in
  let vcd = Asc_sim.Vcd.of_scan_test c ~si ~seq in
  (* The dump between "#0" and "#1" must mention every gate code; count
     value-change lines there. *)
  let after0 =
    match String.index_opt vcd '#' with
    | Some _ ->
        let parts = String.split_on_char '#' vcd in
        List.nth parts 1 (* "0\n...changes..." *)
    | None -> ""
  in
  let lines = String.split_on_char '\n' after0 in
  let change_lines =
    List.filter (fun l -> String.length l >= 2 && (l.[0] = '0' || l.[0] = '1')) lines
  in
  (* clock + all 17 gates. *)
  Alcotest.(check int) "all signals dumped at t0" (1 + Circuit.n_gates c)
    (List.length change_lines)

(* --- Audit ------------------------------------------------------------ *)

let test_audit_duplicates_and_useless () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let targets = Bitvec.create ~default:true (Array.length faults) in
  let rng = Rng.create 7 in
  let t1 =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 6 (fun _ -> Rng.bool_array rng 4))
  in
  (* t2 duplicates t1; t3 is fresh. *)
  let t2 = Scan_test.create ~si:(Array.copy t1.si) ~seq:(Array.map Array.copy t1.seq) in
  let t3 =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 2 (fun _ -> Rng.bool_array rng 4))
  in
  let report = Asc_scan.Audit.run c [| t1; t2; t3 |] ~faults ~targets in
  Alcotest.(check (list (pair int int))) "duplicate found" [ (0, 1) ] report.duplicates;
  Alcotest.(check bool) "duplicate is useless" true (List.mem 1 report.useless);
  Alcotest.(check int) "incremental of duplicate" 0 report.incremental.(1);
  Alcotest.(check int) "coverage consistent" report.coverage
    (Array.fold_left ( + ) 0 report.incremental);
  Alcotest.(check int) "cycles match model"
    (Asc_scan.Time_model.cycles ~n_sv:3 [ 6; 6; 2 ])
    report.cycles;
  (* Scan-outs are the fault-free finals. *)
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) "scan-out matches" true
        (report.scan_outs.(i) = Scan_test.scan_out c t))
    [| t1; t2; t3 |]

(* --- CLI input-failure contract --------------------------------------- *)

(* The test binary lives in _build/default/test/; the dune deps field
   pins the CLI binary next door in _build/default/bin/. *)
let asc_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/asc.exe"

(* Run the CLI, returning (exit code, stderr lines). *)
let run_asc ?(env = "") args =
  let err = Filename.temp_file "asc-cli" ".err" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s %s >/dev/null 2>%s" env
          (Filename.quote asc_exe)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote err)
      in
      let code =
        match Unix.system cmd with
        | Unix.WEXITED n -> n
        | Unix.WSIGNALED n | Unix.WSTOPPED n -> -n
      in
      let ic = open_in err in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      ( code,
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text) ))

(* An input failure must be exit 1 and exactly one `asc:` line — the
   guard caught the exception; no OCaml backtrace leaked. *)
let check_input_failure label args =
  let code, lines = run_asc args in
  Alcotest.(check int) (label ^ ": exit code") 1 code;
  (match lines with
  | [ line ] ->
      Alcotest.(check bool) (label ^ ": one-line asc: message") true
        (String.length line > 4 && String.sub line 0 4 = "asc:")
  | _ ->
      Alcotest.failf "%s: expected one stderr line, got %d: %s" label
        (List.length lines) (String.concat " | " lines))

let missing = "/nonexistent-asc-test/nope"

let test_cli_missing_inputs () =
  if not (Sys.file_exists asc_exe) then
    Alcotest.skip ()
  else begin
    check_input_failure "--resume" [ "run"; "s27"; "--resume"; missing ];
    check_input_failure "--json" [ "run"; "s27"; "--json"; missing ^ "/out.json" ];
    check_input_failure "--trace"
      [ "run"; "s27"; "--trace"; missing ^ "/trace.json"; "--domains"; "1" ];
    check_input_failure "verify-tests" [ "verify-tests"; "s27"; missing ];
    check_input_failure "audit" [ "audit"; "s27"; missing ];
    check_input_failure "import" [ "import"; missing ];
    check_input_failure "export" [ "export"; "s27"; missing ^ "/c.bench" ]
  end

let test_cli_corrupt_resume () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let path = Filename.temp_file "asc-cli" ".ckpt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out path in
        output_string oc "this is not a checkpoint\n";
        close_out oc;
        check_input_failure "corrupt --resume" [ "run"; "s27"; "--resume"; path ])
  end

let test_cli_bad_chaos_schedule () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let code, lines = run_asc ~env:"ASC_CHAOS=gibberish" [ "run"; "s27" ] in
    Alcotest.(check int) "bad ASC_CHAOS: exit code" 2 code;
    match lines with
    | [ line ] ->
        Alcotest.(check bool) "mentions ASC_CHAOS" true
          (contains line "ASC_CHAOS")
    | _ -> Alcotest.failf "expected one stderr line, got %d" (List.length lines)
  end

(* An unwritable --checkpoint target degrades the run instead of failing
   it: warnings on stderr, exit 0. *)
let test_cli_checkpoint_degrades () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let code, _ = run_asc [ "run"; "s27"; "--checkpoint"; missing ^ "/ck.txt" ] in
    Alcotest.(check int) "unwritable --checkpoint still exits 0" 0 code
  end

(* A simulated crash exits like a SIGKILLed process would. *)
let test_cli_chaos_kill_exit_code () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let ck = Filename.temp_file "asc-cli" ".ckpt" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ ck; ck ^ ".tmp"; ck ^ ".1" ])
      (fun () ->
        Sys.remove ck;
        let code, lines =
          run_asc ~env:"ASC_CHAOS=checkpoint.output@1=kill"
            [ "run"; "s298"; "--checkpoint"; ck; "--domains"; "1" ]
        in
        Alcotest.(check int) "exit mirrors SIGKILL" 137 code;
        match lines with
        | [ line ] ->
            Alcotest.(check bool) "names the injection site" true
              (contains line "checkpoint.output")
        | _ -> Alcotest.failf "expected one stderr line, got %d" (List.length lines))
  end

let suite =
  [
    ( "tools",
      [
        Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
        Alcotest.test_case "vcd first cycle" `Quick test_vcd_first_cycle_values;
        Alcotest.test_case "audit" `Quick test_audit_duplicates_and_useless;
        Alcotest.test_case "cli: missing inputs exit 1 with one line" `Quick
          test_cli_missing_inputs;
        Alcotest.test_case "cli: corrupt --resume exits 1" `Quick
          test_cli_corrupt_resume;
        Alcotest.test_case "cli: bad ASC_CHAOS is a usage error" `Quick
          test_cli_bad_chaos_schedule;
        Alcotest.test_case "cli: unwritable --checkpoint degrades" `Quick
          test_cli_checkpoint_degrades;
        Alcotest.test_case "cli: chaos kill exits 137" `Slow
          test_cli_chaos_kill_exit_code;
      ] );
  ]
