(* Tests for the telemetry layer (Asc_util.Telemetry).

   Three families: unit tests of the handle itself (counters, span
   pairing, derived metrics, the disabled no-op path), trace-export tests
   (the emitted file is valid JSON with balanced begin/end events), and
   the determinism contract: the pipeline's output on s298 and s344 is
   bit-identical with telemetry enabled vs disabled at 1, 2 and 4
   domains — telemetry only reads the clock and appends to buffers, so it
   must never influence results. *)

open Asc_util
module Tel = Telemetry

let with_pool ?tel n f =
  let pool = Domain_pool.create ?tel ~domains:n () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

(* --- Handle unit tests ----------------------------------------------- *)

let test_disabled_noop () =
  (* The [None] path must behave exactly like the uninstrumented code. *)
  Tel.add None Tel.Good_cycles 7;
  Tel.incr None Tel.Pool_tasks;
  Alcotest.(check int) "span returns" 42 (Tel.span None "x" (fun () -> 42))

let test_counters_drain () =
  let tel = Tel.create () in
  let h = Some tel in
  Tel.add h Tel.Good_cycles 5;
  Tel.add h Tel.Good_cycles 2;
  Tel.incr h Tel.Podem_tests;
  let s = Tel.drain tel in
  Alcotest.(check int) "accumulated" 7 (Tel.counter_value s "good_cycles");
  Alcotest.(check int) "incr" 1 (Tel.counter_value s "podem_tests");
  Alcotest.(check int) "untouched" 0 (Tel.counter_value s "faulty_cycles");
  Alcotest.(check int)
    "full catalogue present"
    (List.length Tel.all_counters)
    (List.length s.counters);
  (* drain resets: a second snapshot starts from zero. *)
  let s2 = Tel.drain tel in
  Alcotest.(check int) "reset" 0 (Tel.counter_value s2 "good_cycles")

let test_counters_across_domains () =
  let tel = Tel.create () in
  with_pool ~tel 4 (fun pool ->
      Domain_pool.run pool 100 (fun _ -> Tel.incr (Some tel) Tel.Good_cycles));
  let s = Tel.drain tel in
  Alcotest.(check int) "merged across domains" 100
    (Tel.counter_value s "good_cycles");
  Alcotest.(check bool) "pool tasks recorded" true
    (Tel.counter_value s "pool_tasks" > 0)

let test_spans_balanced () =
  let tel = Tel.create () in
  let h = Some tel in
  Tel.span h "outer" (fun () ->
      Tel.span h "inner" ~args:[ ("k", "v") ] (fun () -> ()));
  (* The end event is recorded even when the body raises. *)
  (try Tel.span h "raises" (fun () -> failwith "boom") with Failure _ -> ());
  let s = Tel.drain tel in
  Alcotest.(check bool) "balanced" true (Tel.balanced s);
  let spans = Tel.spans s in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let inner = List.find (fun (r : Tel.span_record) -> r.s_name = "inner") spans in
  let outer = List.find (fun (r : Tel.span_record) -> r.s_name = "outer") spans in
  Alcotest.(check int) "inner depth" 1 inner.s_depth;
  Alcotest.(check int) "outer depth" 0 outer.s_depth;
  Alcotest.(check bool) "args kept" true (List.mem ("k", "v") inner.s_args);
  Alcotest.(check bool) "nesting" true
    (outer.s_begin <= inner.s_begin && inner.s_end <= outer.s_end)

let test_span_totals_shadowing () =
  (* Recursive same-named spans must not double-count wall time. *)
  let tel = Tel.create () in
  let h = Some tel in
  let rec go n = Tel.span h "rec" (fun () -> if n > 0 then go (n - 1)) in
  go 3;
  let s = Tel.drain tel in
  let t = List.find (fun (t : Tel.span_total) -> t.t_name = "rec") (Tel.span_totals s) in
  Alcotest.(check int) "only the outermost counts" 1 t.t_count;
  Alcotest.(check (float 1e-6)) "span_seconds agrees" t.t_seconds
    (Tel.span_seconds s "rec")

let test_pool_loads () =
  let tel = Tel.create () in
  with_pool ~tel 2 (fun pool ->
      Domain_pool.run pool 64 (fun i -> Sys.opaque_identity (ignore (i * i))));
  let s = Tel.drain tel in
  let loads = Tel.pool_loads s in
  Alcotest.(check bool) "some domain claimed work" true (loads <> []);
  let tasks = List.fold_left (fun a (l : Tel.load) -> a + l.l_tasks) 0 loads in
  Alcotest.(check int) "task spans = pool_tasks counter" tasks
    (Tel.counter_value s "pool_tasks");
  List.iter
    (fun (l : Tel.load) ->
      Alcotest.(check bool) "utilization in [0, 1]" true
        (l.l_util >= 0.0 && l.l_util <= 1.0))
    loads;
  Alcotest.(check bool) "imbalance >= 1" true (Tel.imbalance loads >= 1.0);
  Alcotest.(check (float 1e-9)) "imbalance of idle run" 1.0 (Tel.imbalance [])

(* --- Trace export ----------------------------------------------------- *)

(* A minimal JSON acceptor, enough to assert the trace file is
   well-formed without pulling in a parser dependency. *)
let json_ok text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> failwith "unexpected character"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> failwith "bad value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> failwith "bad object"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements ()
        | Some ']' -> advance ()
        | _ -> failwith "bad array"
      in
      elements ()
  and str () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          advance ();
          go ()
      | Some _ ->
          advance ();
          go ()
      | None -> failwith "unterminated string"
    in
    go ()
  and keyword () =
    List.iter (fun _ -> advance ())
      (match peek () with
      | Some 't' -> [ 't'; 'r'; 'u'; 'e' ]
      | Some 'n' -> [ 'n'; 'u'; 'l'; 'l' ]
      | _ -> [ 'f'; 'a'; 'l'; 's'; 'e' ])
  and number () =
    while
      match peek () with
      | Some ('-' | '+' | '.' | 'e' | 'E' | '0' .. '9') -> true
      | _ -> false
    do
      advance ()
    done
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | complete -> complete
  | exception Failure _ -> false

let count_substring text sub =
  let n = String.length sub in
  let count = ref 0 in
  for i = 0 to String.length text - n do
    if String.sub text i n = sub then incr count
  done;
  !count

let test_trace_file () =
  let c = Asc_circuits.Registry.get "s27" in
  let tel = Tel.create () in
  let h = Some tel in
  with_pool ~tel 2 (fun pool ->
      let faults =
        Asc_fault.Collapse.reps (Asc_fault.Collapse.run c)
      in
      let rng = Rng.of_name ~seed:3 "s27/tel-trace" in
      let si = Rng.bool_array rng (Asc_netlist.Circuit.n_dffs c) in
      let seq =
        Array.init 32 (fun _ ->
            Rng.bool_array rng (Asc_netlist.Circuit.n_inputs c))
      in
      ignore (Asc_fault.Seq_fsim.detect ~pool ?tel:h c ~si ~seq ~faults));
  let s = Tel.drain tel in
  Alcotest.(check bool) "snapshot balanced" true (Tel.balanced s);
  let file = Filename.temp_file "asc-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Tel.write_trace file s;
      let ic = open_in file in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "trace is valid JSON" true (json_ok (String.trim text));
      let begins = count_substring text {|"ph":"B"|} in
      let ends = count_substring text {|"ph":"E"|} in
      Alcotest.(check bool) "has events" true (begins > 0);
      Alcotest.(check int) "begin/end balanced" begins ends;
      Alcotest.(check bool) "has fsim span" true
        (count_substring text {|"fsim:detect"|} > 0));
  (* The run-summary metrics document must be well-formed too. *)
  Alcotest.(check bool) "metrics is valid JSON" true
    (json_ok (Json.to_string (Tel.metrics_json s)))

(* --- Determinism: telemetry never affects results --------------------- *)

let check_result label (a : Asc_core.Pipeline.result) (b : Asc_core.Pipeline.result) =
  Alcotest.(check int) (label ^ " cycles_final") a.cycles_final b.cycles_final;
  Alcotest.(check int) (label ^ " cycles_initial") a.cycles_initial b.cycles_initial;
  Alcotest.(check bool) (label ^ " final_detected") true
    (Bitvec.equal a.final_detected b.final_detected);
  Alcotest.(check bool) (label ^ " final_tests") true
    (Array.length a.final_tests = Array.length b.final_tests
    && Array.for_all2 Asc_scan.Scan_test.equal a.final_tests b.final_tests)

let test_pipeline_unaffected () =
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get name in
      let config =
        { Asc_core.Pipeline.default_config with
          t0_source = Asc_core.Pipeline.Directed 200 }
      in
      (* Reference: no telemetry, no pool. *)
      let prepared_ref = Asc_core.Pipeline.prepare ~config c in
      let reference = Asc_core.Pipeline.run ~config prepared_ref in
      List.iter
        (fun domains ->
          let tel = Tel.create () in
          with_pool ~tel domains (fun pool ->
              let prepared =
                Asc_core.Pipeline.prepare ~pool ~tel ~config c
              in
              let r = Asc_core.Pipeline.run ~pool ~tel ~config prepared in
              check_result
                (Printf.sprintf "%s telemetry on (%d domains)" name domains)
                reference r);
          let s = Tel.drain tel in
          Alcotest.(check bool)
            (Printf.sprintf "%s snapshot balanced (%d domains)" name domains)
            true (Tel.balanced s);
          Alcotest.(check bool)
            (Printf.sprintf "%s recorded work (%d domains)" name domains)
            true
            (Tel.counter_value s "good_cycles" > 0
            && Tel.counter_value s "faults_simulated" > 0))
        [ 1; 2; 4 ])
    [ "s298"; "s344" ]

let test_phase_spans_present () =
  let c = Asc_circuits.Registry.get "s298" in
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed 200 }
  in
  let tel = Tel.create () in
  let prepared = Asc_core.Pipeline.prepare ~tel ~config c in
  ignore (Asc_core.Pipeline.run ~tel ~config prepared);
  let s = Tel.drain tel in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "phase span %S present" phase)
        true
        (Tel.span_seconds s phase > 0.0))
    Tel.phase_names

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "disabled handle is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "counters accumulate and drain resets" `Quick
          test_counters_drain;
        Alcotest.test_case "counters merge across domains" `Quick
          test_counters_across_domains;
        Alcotest.test_case "spans pair and nest" `Quick test_spans_balanced;
        Alcotest.test_case "recursive spans count once" `Quick
          test_span_totals_shadowing;
        Alcotest.test_case "pool loads and imbalance" `Quick test_pool_loads;
        Alcotest.test_case "trace file is valid balanced JSON" `Quick
          test_trace_file;
        Alcotest.test_case "pipeline output unaffected by telemetry" `Slow
          test_pipeline_unaffected;
        Alcotest.test_case "phase spans cover the pipeline" `Quick
          test_phase_spans_present;
      ] );
  ]
