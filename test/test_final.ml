(* Final coverage batch: file-based IO paths, partial-scan profile
   consistency, report content checks, and T0-generator regressions on the
   hard-to-initialise stand-in. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

(* File-based IO round-trips (the string paths are covered elsewhere). *)
let test_file_io_roundtrips () =
  let c = Asc_circuits.S27.circuit () in
  let rng = Rng.create 4 in
  let tests =
    Array.init 3 (fun _ ->
        Scan_test.create ~si:(Rng.bool_array rng 3)
          ~seq:(Array.init 2 (fun _ -> Rng.bool_array rng 4)))
  in
  let tset_path = Filename.temp_file "asc" ".tests" in
  Asc_scan.Tset_io.write_file tset_path c tests;
  let loaded = Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.read_file tset_path) in
  Sys.remove tset_path;
  Alcotest.(check bool) "tset file roundtrip" true (Array.for_all2 Scan_test.equal tests loaded);
  let vcd_path = Filename.temp_file "asc" ".vcd" in
  Asc_sim.Vcd.write_file vcd_path c ~si:tests.(0).si ~seq:tests.(0).seq;
  let ic = open_in vcd_path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove vcd_path;
  Alcotest.(check string) "vcd file = vcd string"
    (Asc_sim.Vcd.of_scan_test c ~si:tests.(0).si ~seq:tests.(0).seq)
    contents

(* Partial-scan profile agrees with truncated partial detection, mirroring
   the full-scan property. *)
let prop_partial_profile_matches_truncation =
  QCheck.Test.make ~name:"partial profile agrees with truncated detection" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c =
        Asc_circuits.Profile.make "pf" 4 3 6 45 ~t0_budget:10
        |> Asc_circuits.Generator.generate ~seed
      in
      let faults = Collapse.reps (Collapse.run c) in
      let chain = Asc_scan.Partial.by_fanout c ~ratio:0.5 in
      let rng = Rng.create (seed + 121) in
      let len = 5 in
      let test =
        Scan_test.create
          ~si:(Rng.bool_array rng (Circuit.n_dffs c))
          ~seq:(Array.init len (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)))
      in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      let prof = Asc_scan.Partial.profile c chain test ~faults ~subset in
      let ok = ref true in
      for u = 0 to len - 1 do
        let truncated = Scan_test.truncate test ~u in
        let det = Asc_scan.Partial.detect c chain truncated ~faults in
        Array.iteri
          (fun k fi ->
            let profile_says =
              prof.po_time.(k) <= u || Bitvec.get prof.state_diff_at.(k) u
            in
            if profile_says <> Bitvec.get det fi then ok := false)
          subset
      done;
      !ok)

(* Rendered report numbers match the run they were built from. *)
let test_report_numbers_match_run () =
  let r = Asc_core.Experiments.run_circuit ~seed:1 "s27" in
  let rendered = Asc_util.Table.render (Asc_report.Report.table3 [ r ]) in
  let expect =
    [
      string_of_int r.static_baseline.cycles_initial;
      string_of_int r.static_baseline.cycles_final;
      string_of_int r.directed.cycles_initial;
      string_of_int r.directed.cycles_final;
      string_of_int r.random.cycles_initial;
      string_of_int r.random.cycles_final;
    ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n -> Alcotest.(check bool) ("table3 contains " ^ n) true (contains rendered n))
    expect

(* Regression on the hard-to-initialise stand-in: the directed and genetic
   generators find the reset arming sequence, plain random does not (the
   Table-5 mechanism).  Deterministic under the fixed seeds. *)
let test_hard_circuit_generators () =
  let c = Asc_circuits.Registry.get "s382" in
  let faults = Collapse.reps (Collapse.run c) in
  let budget = 150 in
  let gen_random () =
    let rng = Rng.create 7 in
    let seq = Asc_atpg.Random_tgen.generate rng ~n_pis:(Circuit.n_inputs c) ~len:budget in
    Bitvec.count (Asc_fault.Seq_fsim.detect_no_scan c ~seq ~faults)
  in
  let gen_directed () =
    let rng = Rng.create 7 in
    let cfg = { Asc_atpg.Seq_tgen.default_config with budget } in
    Bitvec.count (Asc_atpg.Seq_tgen.generate ~config:cfg c ~faults ~rng).detected
  in
  let gen_ga () =
    let rng = Rng.create 7 in
    let cfg = { Asc_atpg.Ga_tgen.default_config with budget } in
    Bitvec.count (Asc_atpg.Ga_tgen.generate ~config:cfg c ~faults ~rng).detected
  in
  let r = gen_random () and d = gen_directed () and g = gen_ga () in
  Alcotest.(check bool)
    (Printf.sprintf "directed (%d) >> random (%d)" d r)
    true
    (d > 4 * r);
  Alcotest.(check bool) (Printf.sprintf "genetic (%d) >> random (%d)" g r) true (g > 4 * r)

(* The dynamic baseline's cycle helper equals the model. *)
let test_dynamic_cycles_helper () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let targets = Bitvec.create ~default:true (Array.length faults) in
  let rng = Rng.create 10 in
  let d = Asc_compact.Dynamic_baseline.run c ~faults ~targets ~rng in
  Alcotest.(check int) "helper = model"
    (Asc_scan.Time_model.cycles_of_tests c d.tests)
    (Asc_core.Experiments.dynamic_cycles d c)

let suite =
  [
    ( "final",
      [
        Alcotest.test_case "file IO roundtrips" `Quick test_file_io_roundtrips;
        qtest prop_partial_profile_matches_truncation;
        Alcotest.test_case "report numbers match run" `Quick test_report_numbers_match_run;
        Alcotest.test_case "hard-circuit generators" `Quick test_hard_circuit_generators;
        Alcotest.test_case "dynamic cycles helper" `Quick test_dynamic_cycles_helper;
      ] );
  ]
