(* Tests for the domain-parallel simulation layer.

   Three families: unit tests of Asc_util.Domain_pool itself (scheduling,
   determinism of the merge contract, exception propagation, nesting),
   end-to-end determinism tests asserting that every parallel fault-sim
   entry point returns bit-identical results for 1, 2 and 4 domains — on
   the embedded s27 netlist and on a synthetic circuit from
   Asc_circuits.Generator — and ATPG determinism tests asserting the same
   for Pipeline.prepare (PODEM + the set C) and the T0 generators. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Seq_fsim = Asc_fault.Seq_fsim
module Comb_fsim = Asc_fault.Comb_fsim

let with_pool n f =
  let pool = Domain_pool.create ~domains:n () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

(* --- Domain_pool unit tests ---------------------------------------- *)

let test_pool_covers_all () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let n = 1000 in
          let hit = Array.make n 0 in
          Domain_pool.run pool n (fun i -> hit.(i) <- hit.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "every index ran exactly once (%d domains)" domains)
            true
            (Array.for_all (fun k -> k = 1) hit)))
    [ 1; 2; 4 ]

let test_pool_reuse () =
  with_pool 3 (fun pool ->
      for round = 1 to 5 do
        let n = 100 * round in
        let acc = Array.make n 0 in
        Domain_pool.run pool n (fun i -> acc.(i) <- i);
        let total = Array.fold_left ( + ) 0 acc in
        Alcotest.(check int) "sum" (n * (n - 1) / 2) total
      done)

let test_pool_exception () =
  with_pool 2 (fun pool ->
      match Domain_pool.run pool 64 (fun i -> if i = 13 then failwith "boom") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_nested () =
  (* A task submitting to its own pool must degrade to inline execution,
     not deadlock. *)
  with_pool 2 (fun pool ->
      let acc = Atomic.make 0 in
      Domain_pool.run pool 4 (fun _ ->
          Domain_pool.run pool 8 (fun _ -> ignore (Atomic.fetch_and_add acc 1)));
      Alcotest.(check int) "nested iterations" 32 (Atomic.get acc))

let test_pool_split () =
  List.iter
    (fun (n, pieces) ->
      let ranges = Domain_pool.split ~n ~pieces in
      let covered = Array.make (max 1 n) false in
      Array.iter
        (fun (start, len) ->
          Alcotest.(check bool) "non-empty range" true (len >= 1);
          for i = start to start + len - 1 do
            Alcotest.(check bool) "no overlap" false covered.(i);
            covered.(i) <- true
          done)
        ranges;
      Alcotest.(check int) "covers [0, n)" n
        (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
           (if n = 0 then [||] else covered));
      Alcotest.(check bool) "at most pieces" true (Array.length ranges <= max 1 pieces))
    [ (0, 4); (1, 4); (7, 3); (8, 3); (100, 16); (5, 8) ]

let test_pool_map_order () =
  with_pool 4 (fun pool ->
      let arr = Array.init 257 (fun i -> i) in
      let out = Domain_pool.map (Some pool) arr ~f:(fun x -> x * x) in
      Alcotest.(check bool) "map preserves order" true
        (Array.for_all (fun i -> out.(i) = i * i) arr))

let test_pool_env_default () =
  (* ASC_DOMAINS is not readable reliably inside the suite (the runner may
     set it); just check the resolver returns a sane positive count and
     respects an explicit size. *)
  Alcotest.(check bool) "default >= 1" true (Domain_pool.default_domains () >= 1);
  with_pool 1 (fun p -> Alcotest.(check int) "size 1" 1 (Domain_pool.size p));
  with_pool 4 (fun p -> Alcotest.(check int) "size 4" 4 (Domain_pool.size p))

(* --- Fault-simulation determinism across domain counts -------------- *)

let generated_circuit () =
  let profile =
    Asc_circuits.Profile.make ~t0_budget:100 "par-test" 7 5 11 120
  in
  Asc_circuits.Generator.generate ~seed:11 profile

let test_circuits () =
  [ ("s27", Asc_circuits.Registry.get "s27"); ("generated", generated_circuit ()) ]

(* Run [f] sequentially and under pools of 1, 2 and 4 domains; pass every
   result to [check label]. *)
let across_pools ~label ~check f =
  let reference = f None in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          check (Printf.sprintf "%s (%d domains)" label domains) reference
            (f (Some pool))))
    [ 1; 2; 4 ]

let scan_test_of c ~rng ~len =
  let si = Rng.bool_array rng (Circuit.n_dffs c) in
  let seq = Array.init len (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
  (si, seq)

let check_bitvec label a b =
  Alcotest.(check bool) label true (Bitvec.equal a b)

let test_detect_deterministic () =
  List.iter
    (fun (name, c) ->
      let collapse = Asc_fault.Collapse.run c in
      let faults = Asc_fault.Collapse.reps collapse in
      let rng = Rng.of_name ~seed:3 (name ^ "/par-detect") in
      let si, seq = scan_test_of c ~rng ~len:48 in
      across_pools ~label:(name ^ " detect") ~check:check_bitvec (fun pool ->
          Seq_fsim.detect ?pool c ~si ~seq ~faults);
      across_pools ~label:(name ^ " detect_no_scan") ~check:check_bitvec (fun pool ->
          Seq_fsim.detect_no_scan ?pool c ~seq ~faults))
    (test_circuits ())

let test_profile_deterministic () =
  List.iter
    (fun (name, c) ->
      let collapse = Asc_fault.Collapse.run c in
      let faults = Asc_fault.Collapse.reps collapse in
      let rng = Rng.of_name ~seed:5 (name ^ "/par-profile") in
      let si, seq = scan_test_of c ~rng ~len:40 in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      across_pools ~label:(name ^ " profile")
        ~check:(fun label (a : Seq_fsim.profile) (b : Seq_fsim.profile) ->
          Alcotest.(check bool) (label ^ " po_time") true (a.po_time = b.po_time);
          Alcotest.(check bool)
            (label ^ " state_diff_at") true
            (Array.for_all2 Bitvec.equal a.state_diff_at b.state_diff_at))
        (fun pool -> Seq_fsim.profile ?pool c ~si ~seq ~faults ~subset);
      across_pools ~label:(name ^ " verify_required")
        ~check:(fun label a b -> Alcotest.(check bool) label a b)
        (fun pool -> Seq_fsim.verify_required ?pool c ~si ~seq ~faults ~subset))
    (test_circuits ())

let test_candidates_deterministic () =
  List.iter
    (fun (name, c) ->
      let collapse = Asc_fault.Collapse.run c in
      let faults = Asc_fault.Collapse.reps collapse in
      let rng = Rng.of_name ~seed:7 (name ^ "/par-cand") in
      let _, seq = scan_test_of c ~rng ~len:24 in
      let sis =
        Array.init 130 (fun _ -> Rng.bool_array rng (Circuit.n_dffs c))
      in
      let subset = Array.init (Array.length faults) (fun i -> i) in
      across_pools ~label:(name ^ " candidate_detections")
        ~check:(fun label a b ->
          Alcotest.(check bool) label true
            (Bitmat.rows a = Bitmat.rows b
            && Array.for_all
                 (fun r -> Bitvec.equal (Bitmat.row a r) (Bitmat.row b r))
                 (Array.init (Bitmat.rows a) (fun r -> r))))
        (fun pool -> Seq_fsim.candidate_detections ?pool c ~sis ~seq ~faults ~subset))
    (test_circuits ())

let test_comb_deterministic () =
  List.iter
    (fun (name, c) ->
      let collapse = Asc_fault.Collapse.run c in
      let faults = Asc_fault.Collapse.reps collapse in
      let rng = Rng.of_name ~seed:9 (name ^ "/par-comb") in
      let patterns =
        Array.init 150 (fun _ ->
            {
              Asc_sim.Pattern.pis = Rng.bool_array rng (Circuit.n_inputs c);
              state = Rng.bool_array rng (Circuit.n_dffs c);
            })
      in
      across_pools ~label:(name ^ " comb detect_union") ~check:check_bitvec
        (fun pool -> Comb_fsim.detect_union ?pool c ~patterns ~faults);
      across_pools ~label:(name ^ " comb detect_matrix")
        ~check:(fun label a b ->
          Alcotest.(check bool) label true
            (Array.for_all
               (fun r -> Bitvec.equal (Bitmat.row a r) (Bitmat.row b r))
               (Array.init (Bitmat.rows a) (fun r -> r))))
        (fun pool -> Comb_fsim.detect_matrix ?pool c ~patterns ~faults))
    (test_circuits ())

(* --- ATPG (prepare) determinism across domain counts ----------------- *)

let check_pattern_array label (a : Asc_sim.Pattern.t array) b =
  Alcotest.(check int) (label ^ " count") (Array.length a) (Array.length b);
  Alcotest.(check bool) (label ^ " contents") true
    (Array.for_all2 (fun (p : Asc_sim.Pattern.t) (q : Asc_sim.Pattern.t) ->
         p.pis = q.pis && p.state = q.state)
       a b)

(* Pipeline.prepare — PODEM, the set C, the redundancy proofs — must be
   bit-identical for any domain count, on s27, a generated circuit and a
   paper-profile stand-in. *)
let test_prepare_deterministic () =
  List.iter
    (fun (name, c) ->
      let reference = Asc_core.Pipeline.prepare c in
      List.iter
        (fun domains ->
          with_pool domains (fun pool ->
              let p = Asc_core.Pipeline.prepare ~pool c in
              let label what =
                Printf.sprintf "%s prepare %s (%d domains)" name what domains
              in
              check_pattern_array (label "comb_tests") reference.comb_tests
                p.comb_tests;
              check_bitvec (label "comb_detected") reference.comb_detected
                p.comb_detected;
              check_bitvec (label "redundant") reference.redundant p.redundant;
              check_bitvec (label "aborted") reference.aborted p.aborted;
              check_bitvec (label "targets") reference.targets p.targets))
        [ 1; 2; 4 ])
    (test_circuits () @ [ ("s298", Asc_circuits.Registry.get "s298") ])

(* The T0 generators fan their candidate co-simulation out over fault
   groups; the committed sequence must not depend on the domain count. *)
let test_t0_deterministic () =
  let name, c = ("s298", Asc_circuits.Registry.get "s298") in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let directed pool =
    let cfg = { Asc_atpg.Seq_tgen.default_config with budget = 60 } in
    let rng = Rng.of_name ~seed:13 (name ^ "/par-t0") in
    (Asc_atpg.Seq_tgen.generate ?pool ~config:cfg c ~faults ~rng).seq
  in
  let genetic pool =
    let cfg =
      { Asc_atpg.Ga_tgen.default_config with budget = 30; generations = 2 }
    in
    let rng = Rng.of_name ~seed:17 (name ^ "/par-ga") in
    (Asc_atpg.Ga_tgen.generate ?pool ~config:cfg c ~faults ~rng).seq
  in
  List.iter
    (fun (label, gen) ->
      across_pools ~label
        ~check:(fun label (a : bool array array) b ->
          Alcotest.(check bool) label true (a = b))
        gen)
    [ ("seq_tgen domain-invariant", directed); ("ga_tgen domain-invariant", genetic) ]

(* End to end: the whole pipeline under a pool equals the sequential run
   on the cheapest benchmark circuit. *)
let test_pipeline_deterministic () =
  let c = Asc_circuits.Registry.get "s27" in
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed 200 }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let reference = Asc_core.Pipeline.run ~config prepared in
  with_pool 4 (fun pool ->
      let parallel = Asc_core.Pipeline.run ~pool ~config prepared in
      Alcotest.(check bool)
        "final coverage identical" true
        (Bitvec.equal reference.final_detected parallel.final_detected);
      Alcotest.(check int)
        "final cycles identical" reference.cycles_final parallel.cycles_final;
      Alcotest.(check bool)
        "final tests identical" true
        (Array.for_all2 Asc_scan.Scan_test.equal reference.final_tests
           parallel.final_tests))

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool runs every index once" `Quick test_pool_covers_all;
        Alcotest.test_case "pool is reusable across jobs" `Quick test_pool_reuse;
        Alcotest.test_case "pool re-raises task exceptions" `Quick test_pool_exception;
        Alcotest.test_case "nested pool runs degrade inline" `Quick test_pool_nested;
        Alcotest.test_case "split covers without overlap" `Quick test_pool_split;
        Alcotest.test_case "map preserves element order" `Quick test_pool_map_order;
        Alcotest.test_case "pool sizing" `Quick test_pool_env_default;
        Alcotest.test_case "detect is domain-count invariant" `Quick
          test_detect_deterministic;
        Alcotest.test_case "profile is domain-count invariant" `Quick
          test_profile_deterministic;
        Alcotest.test_case "candidate detections are domain-count invariant" `Quick
          test_candidates_deterministic;
        Alcotest.test_case "comb fsim is domain-count invariant" `Quick
          test_comb_deterministic;
        Alcotest.test_case "prepare is domain-count invariant" `Quick
          test_prepare_deterministic;
        Alcotest.test_case "t0 generators are domain-count invariant" `Quick
          test_t0_deterministic;
        Alcotest.test_case "pipeline is domain-count invariant" `Quick
          test_pipeline_deterministic;
      ] );
  ]
