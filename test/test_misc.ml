(* N-detect metrics, parser robustness fuzzing, and a few time-model
   identities from the paper's Section 2. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

(* --- N-detect ---------------------------------------------------------- *)

let test_n_detect () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 5 in
  let tests =
    Array.init 6 (fun _ ->
        Scan_test.create ~si:(Rng.bool_array rng 3)
          ~seq:(Array.init 3 (fun _ -> Rng.bool_array rng 4)))
  in
  let counts = Asc_scan.Tset.detection_counts c tests ~faults in
  (* n=1 equals plain coverage. *)
  Alcotest.(check int) "n=1 is coverage"
    (Bitvec.count (Asc_scan.Tset.coverage c tests ~faults))
    (Asc_scan.Tset.n_detect_count counts ~n:1);
  (* Monotone in n, bounded by the test count. *)
  let prev = ref max_int in
  for n = 1 to Array.length tests do
    let k = Asc_scan.Tset.n_detect_count counts ~n in
    Alcotest.(check bool) "monotone" true (k <= !prev);
    prev := k
  done;
  Alcotest.(check int) "nobody exceeds the test count" 0
    (Asc_scan.Tset.n_detect_count counts ~n:(Array.length tests + 1))

(* Duplicating a test set doubles every detection count. *)
let prop_n_detect_doubles =
  QCheck.Test.make ~name:"duplicated set doubles detection counts" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c =
        Asc_circuits.Profile.make "nd" 4 3 5 40 ~t0_budget:10
        |> Asc_circuits.Generator.generate ~seed
      in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 91) in
      let tests =
        Array.init 4 (fun _ ->
            Scan_test.create
              ~si:(Rng.bool_array rng (Circuit.n_dffs c))
              ~seq:[| Rng.bool_array rng (Circuit.n_inputs c) |])
      in
      let once = Asc_scan.Tset.detection_counts c tests ~faults in
      let twice =
        Asc_scan.Tset.detection_counts c (Array.append tests tests) ~faults
      in
      Array.for_all2 (fun a b -> b = 2 * a) once twice)

(* --- Parser fuzzing ------------------------------------------------------ *)

(* Random garbage must fail with Parse_error or Structural_error — never
   with an unexpected exception, and never hang. *)
let prop_bench_parser_robust =
  let gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'G'; '('; ')'; '='; ','; '\n'; ' '; '#'; '0' ])
        (int_range 0 200))
  in
  QCheck.Test.make ~name:"bench parser never crashes on garbage" ~count:300
    (QCheck.make gen) (fun text ->
      match Asc_netlist.Bench_io.parse_string ~name:"fuzz" text with
      | (_ : Circuit.t) -> true
      | exception Asc_netlist.Bench_io.Parse_error _ -> true
      | exception Asc_netlist.Circuit.Structural_error _ -> true
      | exception Invalid_argument _ -> true (* duplicate-name path *)
      | exception _ -> false)

let prop_tset_parser_robust =
  let gen =
    QCheck.Gen.(
      string_size
        ~gen:(oneofl [ 't'; 'e'; 's'; 'i'; 'v'; '0'; '1'; ' '; '\n'; 'c' ])
        (int_range 0 200))
  in
  QCheck.Test.make ~name:"test-set parser never crashes on garbage" ~count:300
    (QCheck.make gen) (fun text ->
      match Asc_scan.Tset_io.of_string text with
      | _ -> true
      | exception Asc_scan.Tset_io.Format_error _ -> true
      | exception _ -> false)

(* --- Section 2 arithmetic ------------------------------------------------- *)

(* After combining i pairs out of N length-one tests, the cycle count is
   (N - i + 1) * N_SV + N — decreasing in i, as the paper's motivation
   computes. *)
let prop_section2_formula =
  QCheck.Test.make ~name:"Section 2: combining monotonically lowers cycles" ~count:100
    QCheck.(pair (int_range 2 60) (int_range 1 100))
    (fun (n, n_sv) ->
      let cycles_after i =
        (* i combinations leave n - i tests whose lengths sum to n. *)
        let lengths = List.init (n - i) (fun k -> if k = 0 then i + 1 else 1) in
        Asc_scan.Time_model.cycles ~n_sv lengths
      in
      let ok = ref true in
      for i = 0 to n - 2 do
        if cycles_after (i + 1) >= cycles_after i then ok := false;
        if cycles_after i <> ((n - i + 1) * n_sv) + n then ok := false
      done;
      !ok)

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "n-detect basics" `Quick test_n_detect;
        qtest prop_n_detect_doubles;
        qtest prop_bench_parser_robust;
        qtest prop_tset_parser_robust;
        qtest prop_section2_formula;
      ] );
  ]
