(* Cross-path consistency: the same question answered through different
   simulator paths must agree.  These are the integration seams between
   libraries — exactly where independent implementations drift apart. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

let random_circuit seed =
  Asc_circuits.Profile.make "xp" 5 4 6 55 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

(* Path 1: comb_fsim on a pattern.  Path 2: seq_fsim on the equivalent
   length-one scan test.  Path 3: 3-valued partial detect with a full
   chain.  All three must agree fault by fault. *)
let prop_three_paths_agree =
  QCheck.Test.make ~name:"comb / seq / partial detection paths agree" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 101) in
      let p =
        Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c) ~n_ffs:(Circuit.n_dffs c)
      in
      let test = Scan_test.of_pattern p in
      let comb =
        Asc_fault.Comb_fsim.detect_union c ~patterns:[| p |] ~faults
      in
      let seq = Scan_test.detect c test ~faults in
      let partial =
        Asc_scan.Partial.detect c (Asc_scan.Partial.full_chain c) test ~faults
      in
      Bitvec.equal comb seq && Bitvec.equal seq partial)

(* The no-scan detector must agree with the incremental simulator on
   arbitrary split points, and with 2-valued simulation refinement: a
   fault it reports is detected from EVERY binary initial state without
   looking at the final state. *)
let prop_no_scan_vs_incremental =
  QCheck.Test.make ~name:"one-shot no-scan = incremental at any split" ~count:10
    QCheck.(pair (int_range 0 10_000) (int_range 1 9))
    (fun (seed, split) ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 102) in
      let seq = Array.init 10 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let inc = Asc_fault.Seq_fsim.inc3_create c faults in
      let (_ : int) = Asc_fault.Seq_fsim.inc3_commit inc (Array.sub seq 0 split) in
      let (_ : int) =
        Asc_fault.Seq_fsim.inc3_commit inc (Array.sub seq split (10 - split))
      in
      Bitvec.equal
        (Asc_fault.Seq_fsim.inc3_detected inc)
        (Asc_fault.Seq_fsim.detect_no_scan c ~seq ~faults))

(* Combining two tests then simulating equals simulating the longer test
   directly (combine is pure data plumbing). *)
let prop_combine_is_concatenation =
  QCheck.Test.make ~name:"combine = concatenation semantics" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 103) in
      let si = Rng.bool_array rng (Circuit.n_dffs c) in
      let seq1 = Array.init 3 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let seq2 = Array.init 4 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)) in
      let t1 = Scan_test.create ~si ~seq:seq1 in
      let t2 = Scan_test.create ~si:(Rng.bool_array rng (Circuit.n_dffs c)) ~seq:seq2 in
      let combined = Scan_test.combine t1 t2 in
      let direct = Scan_test.create ~si ~seq:(Array.append seq1 seq2) in
      Bitvec.equal
        (Scan_test.detect c combined ~faults)
        (Scan_test.detect c direct ~faults))

(* The audit's incremental coverage sums to the coverage computed
   independently, on the pipeline's real output. *)
let test_audit_vs_pipeline () =
  let c = Asc_circuits.Registry.get "s344" in
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed 60 }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let r = Asc_core.Pipeline.run ~config prepared in
  let report =
    Asc_scan.Audit.run c r.final_tests ~faults:prepared.faults ~targets:prepared.targets
  in
  Alcotest.(check int) "audit coverage = pipeline coverage"
    (Bitvec.count r.final_detected)
    report.coverage;
  Alcotest.(check int) "audit cycles = pipeline cycles" r.cycles_final report.cycles;
  Alcotest.(check (list (pair int int))) "no duplicates in the final set" []
    report.duplicates

(* Saved and reloaded test sets behave identically. *)
let test_tset_io_behavioural_roundtrip () =
  let c = Asc_circuits.Registry.get "s298" in
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed 120 }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let r = Asc_core.Pipeline.run ~config prepared in
  let text = Asc_scan.Tset_io.to_string c r.final_tests in
  let loaded = Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.of_string text) in
  let cov_orig = Asc_scan.Tset.coverage c r.final_tests ~faults:prepared.faults in
  let cov_load = Asc_scan.Tset.coverage c loaded ~faults:prepared.faults in
  Alcotest.(check bool) "identical coverage" true (Bitvec.equal cov_orig cov_load)

let suite =
  [
    ( "cross",
      [
        qtest prop_three_paths_agree;
        qtest prop_no_scan_vs_incremental;
        qtest prop_combine_is_concatenation;
        Alcotest.test_case "audit vs pipeline" `Quick test_audit_vs_pipeline;
        Alcotest.test_case "tset_io behavioural roundtrip" `Quick
          test_tset_io_behavioural_roundtrip;
      ] );
  ]
